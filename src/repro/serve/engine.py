"""The asyncio twin of :class:`repro.eval.engine.EvalEngine`.

:class:`AsyncEvalEngine` serves completions concurrently from an event
loop while preserving the batch engine's contract bit for bit:

* **Same cache keys.** Misses and hits go through the same
  :func:`repro.eval.engine.cache_key` digests over the same
  :class:`~repro.llm.config.ModelConfig`/prompt/sampling inputs, against
  the same injectable :class:`~repro.eval.engine.ResponseStore` — a
  served completion warms the batch CLI's cache and vice versa.
* **Same results.** :meth:`AsyncEvalEngine.run` assembles records with
  the sync engine's ``_make_record`` and meters usage in item order, so
  for the same grid it returns a byte-identical
  :class:`~repro.eval.runner.RunResult` (pinned by digest in the tests)
  and writes byte-identical cache segments.

What the async path adds over the sync one:

* **Request coalescing.** Identical in-flight prompts (same cache key)
  share one upstream completion: the first arrival owns the request, the
  rest await its future. With deterministic providers the duplicates'
  responses are exact, and with real APIs coalescing is what keeps a
  burst of identical queries from billing N times.
* **Retry/backoff + rate limiting.** Every upstream call runs under a
  :class:`~repro.serve.retry.RetryPolicy` (bounded attempts, jittered
  exponential backoff, jittered per-attempt deadlines) and an optional
  :class:`~repro.serve.retry.RateLimiter` token bucket, acquired inside
  each attempt so backed-off retries re-queue behind fresh work.
* **Resilience.** ``complete`` accepts a *failover chain* — an ordered
  tuple of providers sharing one :class:`~repro.llm.config.ModelConfig`.
  Each chain member sits behind its own
  :class:`~repro.serve.resilience.CircuitBreaker` (per-attempt outcomes
  over a sliding window; open breakers are skipped, half-open ones
  probed); a request whose candidate's retries exhaust fails over to
  the next healthy member, and a request that outlives the observed
  latency tail (:class:`~repro.serve.resilience.LatencyTracker` p95)
  *hedges* — launches a backup call on the next healthy member and
  takes the first success, cancelling the loser. Hedges run inside the
  owner's coalesced future, so a hedge never duplicates an in-flight
  key. Requests may carry an absolute ``deadline`` that clips attempt
  timeouts and aborts pointless backoffs
  (:class:`~repro.util.retry.DeadlineExceeded`).

Store calls run in worker threads (:func:`asyncio.to_thread`) so disk
segment reads never stall the loop; the stores' own locking makes that
safe, and inside :meth:`run` writes batch through ``store.deferred()``
exactly like the sync engine.
"""

from __future__ import annotations

import asyncio
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.eval.engine import (
    CachedResponse,
    CacheStats,
    ResponseStore,
    _make_record,
    cache_key,
)
from repro.llm.base import LlmResponse
from repro.llm.pricing import UsageMeter
from repro.serve.providers import ProviderClient, provider_label
from repro.serve.resilience import (
    AllProvidersUnavailable,
    BreakerPolicy,
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
)
from repro.serve.retry import RateLimiter, RetryPolicy, Sleep, call_with_retry
from repro.util.faults import active_fault_plan
from repro.util.retry import DeadlineExceeded, TransientError

#: ``complete`` accepts one provider or an ordered failover chain.
ProviderChain = ProviderClient | Sequence[ProviderClient]


@dataclass
class ServeStats(CacheStats):
    """Engine accounting plus the serving-only counters.

    ``coalesced`` waiters piggybacked on another request's completion (they
    are *not* hits or misses — the owning request books those); the
    ``retries`` counter (upstream re-attempts after retryable failures) is
    inherited from :class:`CacheStats` now that the sync engine retries
    too. ``failed_over`` counts calls launched against a non-primary
    chain member after the primary was open or exhausted; ``hedged``
    counts backup calls launched against a still-running primary;
    ``shed`` counts requests rejected at admission (queue over budget or
    deadline unmeetable) — bumped by the HTTP service, surfaced here so
    one object tells the whole serving story.
    """

    coalesced: int = 0
    failed_over: int = 0
    hedged: int = 0
    shed: int = 0

    def summary(self) -> str:
        out = (
            f"{super().summary()}, {self.coalesced} coalesced, "
            f"{self.retries} retries"
        )
        if self.failed_over or self.hedged or self.shed:
            out += (
                f", {self.failed_over} failed over, {self.hedged} hedged, "
                f"{self.shed} shed"
            )
        return out


class AsyncEvalEngine:
    """Concurrent cached evaluation against one or more providers.

    One engine spans a service lifetime: its ``stats`` describe all
    traffic served, its ``_inflight`` table coalesces concurrent
    duplicates across every entry point (single :meth:`complete` calls
    and :meth:`run` batches alike), and its ``_breakers`` registry holds
    one circuit breaker per provider label ever used.

    All state mutation happens on one event loop (the inflight table,
    breakers, and latency tracker are touched with no ``await`` between
    observation and update, so no lock is needed); blocking work — model
    inference, disk segment I/O — is pushed to worker threads.
    """

    def __init__(
        self,
        *,
        store: ResponseStore | None = None,
        retry: RetryPolicy | None = None,
        limiter: RateLimiter | None = None,
        max_concurrency: int = 64,
        rng: random.Random | None = None,
        sleep: Sleep = asyncio.sleep,
        clock: Callable[[], float] = time.monotonic,
        breaker: BreakerPolicy | None = None,
        hedge: HedgePolicy | None = HedgePolicy(),
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.store = store
        self.retry = retry or RetryPolicy()
        self.limiter = limiter
        self.max_concurrency = max_concurrency
        self.stats = ServeStats()
        self.breaker_policy = breaker or BreakerPolicy()
        self.hedge_policy = hedge  # None = hedging disabled
        self.latency = LatencyTracker()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock
        self._inflight: dict[str, asyncio.Future[LlmResponse]] = {}
        self._breakers: dict[str, CircuitBreaker] = {}

    @property
    def clock(self) -> Callable[[], float]:
        """The engine's monotonic clock — deadlines must be minted on it."""
        return self._clock

    # -- resilience plumbing -------------------------------------------------
    def breaker(self, label: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one provider label."""
        found = self._breakers.get(label)
        if found is None:
            found = CircuitBreaker(self.breaker_policy, clock=self._clock)
            self._breakers[label] = found
        return found

    def breaker_snapshots(self) -> dict[str, dict]:
        """Read-only breaker states for ``/v1/stats`` and the manifest."""
        # list() first: handler threads read this while the loop may be
        # registering a new label, and a live dict view could see it.
        return {
            label: self._breakers[label].snapshot()
            for label in sorted(list(self._breakers))
        }

    async def cancel_inflight(self) -> int:
        """Cancel every pending coalesced future; returns how many.

        The drain/close path: coalesced waiters ``shield`` their owner,
        so without this a shutdown during an in-flight burst would park
        forever behind completions nobody will consume. Cancelling the
        shared future wakes every waiter with ``CancelledError``; owners
        guard their ``set_result``/``set_exception`` with ``done()`` so
        a late completion is dropped, not crashed.
        """
        cancelled = 0
        for key, future in list(self._inflight.items()):
            if not future.done():
                future.cancel()
                cancelled += 1
            self._inflight.pop(key, None)
        return cancelled

    # -- single completion ---------------------------------------------------
    @staticmethod
    def _as_chain(provider: ProviderChain) -> tuple[ProviderClient, ...]:
        if isinstance(provider, (tuple, list)):
            if not provider:
                raise ValueError("empty provider chain")
            return tuple(provider)
        return (provider,)

    async def complete(
        self,
        provider: ProviderChain,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
        deadline: float | None = None,
        info: dict | None = None,
    ) -> LlmResponse:
        """One completion: cache hit, coalesced join, or owned upstream call.

        ``provider`` may be a single client or an ordered failover chain
        (every member serving the same model config). ``deadline`` is an
        absolute instant on the engine clock; ``info``, when given, is
        filled with ``served_by`` (provider label, or ``"cache"`` /
        ``"coalesced"``) and ``hedged`` for the response's provenance tag.
        """
        chain = self._as_chain(provider)
        if info is not None:
            info.setdefault("hedged", False)
        if self.store is None:
            response = await self._upstream(
                chain, prompt, temperature=temperature, top_p=top_p,
                deadline=deadline, info=info,
            )
            self.stats._bump("uncached")
            return response

        key = cache_key(chain[0].config, prompt, temperature, top_p)
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats._bump("coalesced")
            if info is not None:
                info["served_by"] = "coalesced"
            return await asyncio.shield(existing)
        # No await between the miss above and this insert: on one event
        # loop that makes check-then-set atomic, so every concurrent
        # duplicate lands in the branch above.
        future: asyncio.Future[LlmResponse] = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        try:
            cached = await asyncio.to_thread(self.store.get, key)
            if cached is not None:
                self.stats._bump("hits")
                if info is not None:
                    info["served_by"] = "cache"
                response = cached.to_response(chain[0].name)
            else:
                response = await self._upstream(
                    chain, prompt, temperature=temperature, top_p=top_p,
                    key=key, deadline=deadline, info=info,
                )
                await asyncio.to_thread(
                    self.store.put, key, CachedResponse.from_response(response)
                )
                self.stats._bump("misses")
            if not future.done():
                future.set_result(response)
            return response
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()  # consumed: waiterless failure ≠ leak
            raise
        finally:
            self._inflight.pop(key, None)

    # -- the resilient upstream path -----------------------------------------
    async def _call_one(
        self,
        client: ProviderClient,
        label: str,
        prompt: str,
        temperature: float | None,
        top_p: float | None,
        token: str,
        deadline: float | None,
        plan,
    ) -> LlmResponse:
        """One provider's full retry loop, breaker- and fault-aware."""
        breaker = self.breaker(label)
        state = {"attempt": 0}

        async def attempt() -> LlmResponse:
            index = state["attempt"]
            state["attempt"] += 1
            if plan is not None:
                tail = plan.slow_tail_delay(label, token)
                if tail is not None:
                    await self._sleep(tail)
                plan.provider_fault(label, token, index)
            if self.limiter is not None:
                # Acquired per attempt: a retry after backoff waits its
                # turn again rather than holding a stale reservation.
                await self.limiter.acquire()
            return await client.complete(
                prompt, temperature=temperature, top_p=top_p
            )

        def on_retry(_attempt: int, _exc: BaseException) -> None:
            self.stats._bump("retries")
            breaker.record_failure()

        start = self._clock()
        try:
            response = await call_with_retry(
                attempt,
                policy=self.retry,
                rng=self._rng,
                sleep=self._sleep,
                on_retry=on_retry,
                deadline=deadline,
                clock=self._clock,
            )
        except DeadlineExceeded:
            raise  # the caller's budget, not the provider's health
        except TransientError:
            breaker.record_failure()  # the final, exhausting attempt
            raise
        breaker.record_success()
        self.latency.record(self._clock() - start)
        return response

    def _next_candidate(
        self, chain: Sequence[ProviderClient], used: set[str]
    ) -> tuple[ProviderClient, str] | None:
        """The first unused chain member whose breaker admits a call.

        ``allow()`` is only consulted for members actually considered, so
        half-open probe slots are consumed exactly when a call launches.
        """
        for client in chain:
            label = provider_label(client)
            if label in used:
                continue
            if self.breaker(label).allow():
                used.add(label)
                return client, label
        return None

    async def _upstream(
        self,
        chain: tuple[ProviderClient, ...],
        prompt: str,
        *,
        temperature: float | None,
        top_p: float | None,
        key: str | None = None,
        deadline: float | None = None,
        info: dict | None = None,
    ) -> LlmResponse:
        """Failover-chain upstream: breaker-gated candidates, hedging."""
        plan = active_fault_plan()
        token = key or cache_key(chain[0].config, prompt, temperature, top_p)
        primary_label = provider_label(chain[0])
        used: set[str] = set()

        first = self._next_candidate(chain, used)
        if first is None:
            hint = max(
                0.05,
                min(
                    self.breaker(provider_label(c)).retry_after()
                    for c in chain
                ),
            )
            raise AllProvidersUnavailable(
                f"all {len(chain)} provider breakers are open for "
                f"{chain[0].name!r}",
                retry_after=hint,
            )
        client, label = first
        if label != primary_label:
            self.stats._bump("failed_over")

        def launch(c: ProviderClient, lbl: str) -> asyncio.Task:
            return asyncio.get_running_loop().create_task(
                self._call_one(
                    c, lbl, prompt, temperature, top_p, token, deadline, plan
                )
            )

        # Fast path: a lone provider has nothing to hedge to or fail over
        # to — skip the task machinery (and its overhead) entirely.
        if len(chain) == 1:
            response = await self._call_one(
                client, label, prompt, temperature, top_p, token, deadline,
                plan,
            )
            if info is not None:
                info["served_by"] = label
            return response

        tasks: dict[asyncio.Task, str] = {launch(client, label): label}
        hedge_spent = False
        timer: asyncio.Task | None = None
        last_error: BaseException | None = None
        try:
            while True:
                if (
                    timer is None
                    and not hedge_spent
                    and self.hedge_policy is not None
                    and len(tasks) == 1
                ):
                    delay = self.latency.hedge_delay(self.hedge_policy)
                    timer = asyncio.get_running_loop().create_task(
                        self._sleep(delay)
                    )
                wait_for = set(tasks) | ({timer} if timer is not None else set())
                done, _ = await asyncio.wait(
                    wait_for, return_when=asyncio.FIRST_COMPLETED
                )
                finished = [t for t in done if t in tasks]
                if not finished:
                    # The hedge timer matured with the call still running:
                    # launch a backup on the next healthy provider and race
                    # them — first success wins, the loser is cancelled.
                    timer = None
                    hedge_spent = True
                    candidate = self._next_candidate(chain, used)
                    if candidate is not None:
                        h_client, h_label = candidate
                        self.stats._bump("hedged")
                        if info is not None:
                            info["hedged"] = True
                        tasks[launch(h_client, h_label)] = h_label
                    continue
                for task in finished:
                    task_label = tasks.pop(task)
                    error = task.exception()
                    if error is None:
                        if info is not None:
                            info["served_by"] = task_label
                        return task.result()
                    if isinstance(error, DeadlineExceeded):
                        raise error  # no budget left to fail over with
                    last_error = error
                if not tasks:
                    candidate = self._next_candidate(chain, used)
                    if candidate is None:
                        assert last_error is not None
                        raise last_error
                    n_client, n_label = candidate
                    self.stats._bump("failed_over")
                    tasks[launch(n_client, n_label)] = n_label
        finally:
            if timer is not None and not timer.done():
                timer.cancel()
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    # -- batched evaluation --------------------------------------------------
    async def run(
        self,
        provider: ProviderChain,
        items: Sequence[tuple[str, str, object]],
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ):
        """Evaluate ``items`` of (item_id, prompt, truth) concurrently.

        The async counterpart of :meth:`EvalEngine.run`: identical
        records in identical order, usage metered in item order — the
        returned :class:`~repro.eval.runner.RunResult` and the store
        contents are byte-identical to the sync engine's for the same
        grid, whatever ``max_concurrency`` (and, because every chain
        member serves the same model config, whichever member answers).
        """
        from repro.eval.runner import RunResult

        chain = self._as_chain(provider)
        items = list(items)
        if not items:
            raise ValueError("no items to run")

        gate = asyncio.Semaphore(self.max_concurrency)

        async def bounded(prompt: str) -> LlmResponse:
            async with gate:
                return await self.complete(
                    chain, prompt, temperature=temperature, top_p=top_p
                )

        deferred = getattr(self.store, "deferred", None)
        with deferred() if deferred is not None else nullcontext():
            responses = await asyncio.gather(
                *(bounded(prompt) for _, prompt, _ in items)
            )

        records = [
            _make_record(item_id, truth, response)
            for (item_id, _, truth), response in zip(items, responses)
        ]
        meter = UsageMeter(chain[0].config)
        for response in responses:
            meter.record(response.usage)
        return RunResult(
            model_name=chain[0].name,
            records=tuple(records),
            usage=meter.summary(),
        )
