"""Evaluation harness: metrics, experiment runners, Table 1 and figures."""

from repro.eval.engine import (
    CachedResponse,
    CacheStats,
    DiskResponseStore,
    EvalEngine,
    MemoryResponseStore,
    ResponseStore,
    cache_key,
    default_cache_dir,
)
from repro.eval.figures import (
    RooflineFigure,
    TokenDistributionFigure,
    figure1_data,
    figure2_data,
)
from repro.eval.hyperparams import (
    DEFAULT_GRID,
    HyperparamStudy,
    run_hyperparam_study,
)
from repro.eval.matrix import (
    FlipTracking,
    KernelFlip,
    MatrixCell,
    MatrixResult,
    label_flips,
    run_matrix,
    scenario_samples,
)
from repro.eval.metrics import (
    ConfusionCounts,
    MetricReport,
    accuracy,
    confusion,
    macro_f1,
    mcc,
)
from repro.eval.report import Comparison, ordering_agreement, render_comparisons
from repro.eval.rq1 import Rq1Result, run_rq1
from repro.eval.rq23 import ClassificationResult, run_classification, run_rq2, run_rq3
from repro.eval.rq4 import Rq4Result, run_rq4, run_rq4_all_scopes
from repro.eval.runner import PredictionRecord, RunResult, run_queries
from repro.eval.table1 import PAPER_TABLE1, Table1, Table1Row, build_row, build_table1

__all__ = [
    "EvalEngine",
    "CacheStats",
    "CachedResponse",
    "ResponseStore",
    "MemoryResponseStore",
    "DiskResponseStore",
    "cache_key",
    "default_cache_dir",
    "MetricReport",
    "ConfusionCounts",
    "accuracy",
    "macro_f1",
    "mcc",
    "confusion",
    "PredictionRecord",
    "RunResult",
    "run_queries",
    "Rq1Result",
    "run_rq1",
    "ClassificationResult",
    "run_classification",
    "run_rq2",
    "run_rq3",
    "Rq4Result",
    "run_rq4",
    "run_rq4_all_scopes",
    "HyperparamStudy",
    "run_hyperparam_study",
    "DEFAULT_GRID",
    "RooflineFigure",
    "TokenDistributionFigure",
    "figure1_data",
    "figure2_data",
    "Table1",
    "Table1Row",
    "build_table1",
    "build_row",
    "PAPER_TABLE1",
    "Comparison",
    "render_comparisons",
    "ordering_agreement",
    "MatrixCell",
    "MatrixResult",
    "KernelFlip",
    "FlipTracking",
    "label_flips",
    "run_matrix",
    "scenario_samples",
]
