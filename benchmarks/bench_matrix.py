"""E-matrix — hardware-matrix sweep: process-pool vs thread-pool cold time.

The emulated models are pure-Python CPU work, so a cold sweep is
GIL-bound under threads; the process backend shards it across cores. This
bench runs one cold 2-GPU matrix slice per backend (fresh stores, so every
completion is computed) and a warm thread replay, and records wall time.
On a multi-core host the process backend should approach cores× over
sequential while threads stay near 1×; on a single-core host the two
backends tie (minus pool overhead), which the table makes visible rather
than asserting away.
"""

from __future__ import annotations

import os
import time

from repro.eval.engine import EvalEngine, MemoryResponseStore
from repro.eval.matrix import run_matrix
from repro.llm import get_model
from repro.roofline.hardware import get_gpu
from repro.util.tables import format_table

MODELS = ("o3-mini-high", "gpt-4o-mini")
GPUS = ("V100", "H100")
SLICE = 60
JOBS = max(4, os.cpu_count() or 1)


def _sweep(backend: str, jobs: int, store=None):
    engine = EvalEngine(jobs=jobs, store=store, backend=backend)
    t0 = time.perf_counter()
    result = run_matrix(
        [get_model(n) for n in MODELS],
        [get_gpu(n) for n in GPUS],
        rqs=("rq2",),
        limit=SLICE,
        engine=engine,
    )
    return result, time.perf_counter() - t0


def test_matrix_backend_walltime(dataset):
    # Scenario profiling is memoized; prime it so each sweep times only the
    # completion fan-out.
    run_matrix([get_model(MODELS[0])], [get_gpu(GPUS[0])],
               rqs=("rq2",), limit=1)

    baseline, t_seq = _sweep("sequential", 1)
    threads, t_thread = _sweep("thread", JOBS)
    store = MemoryResponseStore()
    procs, t_proc = _sweep("process", JOBS, store=store)
    warm, t_warm = _sweep("thread", JOBS, store=store)

    rows = [
        ["sequential cold", 1, f"{t_seq:.3f}", f"{t_seq / t_seq:.2f}x"],
        ["thread cold", JOBS, f"{t_thread:.3f}", f"{t_seq / t_thread:.2f}x"],
        ["process cold", JOBS, f"{t_proc:.3f}", f"{t_seq / t_proc:.2f}x"],
        ["thread warm", JOBS, f"{t_warm:.3f}", f"{t_seq / t_warm:.2f}x"],
    ]
    print()
    print(format_table(
        ["plan", "jobs", "wall s", "speedup"],
        rows,
        title=(f"Hardware matrix cold sweep — {len(MODELS)} models × "
               f"{len(GPUS)} GPUs × {SLICE} kernels "
               f"({os.cpu_count()} cores)"),
    ))

    # Whatever the hardware, every plan must agree byte-for-byte.
    assert threads == baseline
    assert procs == baseline
    assert warm == baseline
    # The warm replay is pure cache lookups: it must beat the cold sweep.
    assert t_warm < t_proc or t_warm < t_thread
