"""Math-intensive pointwise and iterative families.

Iteration-heavy per-element kernels (fractals, series expansions, fixed-point
solvers) are the single-precision compute-bound population; the pointwise
transcendental kernels (Black-Scholes, GELU) sit well under the SP balance
point but hop across the DP one when built in double precision — the same
precision-dependent flip the paper's Figure 1 shows.
"""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import (
    assemble,
    draw_iters,
    draw_size_1d,
    variant_rng,
)
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    BinOp,
    BinOpKind,
    Call,
    CallFn,
    Cast,
    Const,
    DType,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Select,
    Store,
    Var,
    add,
    aff,
    call,
    div,
    fma,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language


def _dt(variant: int) -> DType:
    return DType.F64 if variant in (0, 1, 3) else DType.F32


def _c(v: float, dt: DType) -> Const:
    return Const(v, dt)


@family("blackscholes", "mathheavy", tendency="mixed")
def build_blackscholes(variant: int, language: Language):
    rng = variant_rng("blackscholes", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    s = var("s", dt)
    body = (
        Let("s", load("price", aff("gx"), dt), dt),
        Let("x", load("strike", aff("gx"), dt), dt),
        Let("t", load("expiry", aff("gx"), dt), dt),
        Let("sqrt_t", call(CallFn.SQRT, var("t", dt), dtype=dt), dt),
        Let(
            "d1",
            div(
                add(
                    call(CallFn.LOG, div(s, var("x", dt), dt), dtype=dt),
                    mul(
                        add(var("rate", dt),
                            mul(_c(0.5, dt), mul(var("vol", dt), var("vol", dt), dt), dt), dt),
                        var("t", dt),
                        dt,
                    ),
                    dt,
                ),
                mul(var("vol", dt), var("sqrt_t", dt), dt),
                dt,
            ),
            dt,
        ),
        Let("d2", sub(var("d1", dt), mul(var("vol", dt), var("sqrt_t", dt), dt), dt), dt),
        Let(
            "nd1",
            mul(_c(0.5, dt),
                add(_c(1.0, dt),
                    call(CallFn.ERF, mul(var("d1", dt), _c(0.7071067811865475, dt), dt),
                         dtype=dt), dt), dt),
            dt,
        ),
        Let(
            "nd2",
            mul(_c(0.5, dt),
                add(_c(1.0, dt),
                    call(CallFn.ERF, mul(var("d2", dt), _c(0.7071067811865475, dt), dt),
                         dtype=dt), dt), dt),
            dt,
        ),
        Let(
            "disc",
            call(CallFn.EXP,
                 sub(_c(0.0, dt), mul(var("rate", dt), var("t", dt), dt), dt), dtype=dt),
            dt,
        ),
        Store(
            "call_out", aff("gx"),
            sub(mul(s, var("nd1", dt), dt),
                mul(mul(var("x", dt), var("disc", dt), dt), var("nd2", dt), dt), dt),
            dt,
        ),
        Store(
            "put_out", aff("gx"),
            add(
                sub(mul(mul(var("x", dt), var("disc", dt), dt),
                        sub(_c(1.0, dt), var("nd2", dt), dt), dt),
                    mul(s, sub(_c(1.0, dt), var("nd1", dt), dt), dt), dt),
                mul(_c(0.0, dt), s, dt),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="black_scholes_kernel",
        arrays=(
            ArrayDecl("price", dt, "n"),
            ArrayDecl("strike", dt, "n"),
            ArrayDecl("expiry", dt, "n"),
            ArrayDecl("call_out", dt, "n", is_output=True),
            ArrayDecl("put_out", dt, "n", is_output=True),
        ),
        params=(ScalarParam("rate", dt), ScalarParam("vol", dt), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="blackscholes", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"rate": 0, "vol": 1, "n": "n"},
        description="European option pricing via the Black-Scholes formula",
    )


def _escape_iteration(name: str, family_name: str, cx_expr, cy_expr, description: str):
    """Shared structure of mandelbrot/julia-style escape-time fractals."""

    def build(variant: int, language: Language):
        rng = variant_rng(family_name, variant, language)
        dt = _dt(variant)
        side = int(rng.choice([1024, 1536, 2048, 3072]))
        max_iter = int(rng.choice([128, 256, 512]))
        dtv = dt
        body = (
            Let("cx", cx_expr(dtv), dtv),
            Let("cy", cy_expr(dtv), dtv),
            Let("zx", mul(_c(0.0, dtv), var("cx", dtv), dtv), dtv),
            Let("zy", mul(_c(0.0, dtv), var("cy", dtv), dtv), dtv),
            Let("count", Const(0, DType.I32), DType.I32),
            For(
                "it", "max_iter",
                (
                    Let("zx2", mul(var("zx", dtv), var("zx", dtv), dtv), dtv),
                    Let("zy2", mul(var("zy", dtv), var("zy", dtv), dtv), dtv),
                    If(
                        cond=BinOp(
                            BinOpKind.LE,
                            add(var("zx2", dtv), var("zy2", dtv), dtv),
                            _c(4.0, dtv),
                            DType.I32,
                        ),
                        then=(
                            Assign(
                                "zy",
                                fma(mul(_c(2.0, dtv), var("zx", dtv), dtv),
                                    var("zy", dtv), var("cy", dtv), dtv),
                                dtv,
                            ),
                            Assign(
                                "zx",
                                add(sub(var("zx2", dtv), var("zy2", dtv), dtv),
                                    var("cx", dtv), dtv),
                                dtv,
                            ),
                            Assign(
                                "count",
                                add(var("count", DType.I32), Const(1, DType.I32), DType.I32),
                                DType.I32,
                            ),
                        ),
                        taken_fraction=0.55,
                    ),
                ),
            ),
            Store("iters", aff(("gy", "nx"), "gx"), var("count", DType.I32), DType.I32),
        )
        kernel = Kernel(
            name=name,
            arrays=(ArrayDecl("iters", DType.I32, "nx*ny", is_output=True),),
            params=(
                ScalarParam("scale", dtv),
                ScalarParam("max_iter", DType.I32),
                ScalarParam("nx", DType.I32),
                ScalarParam("ny", DType.I32),
            ),
            body=body,
            work_items="nx",
            work_items_y="ny",
        )
        return assemble(
            family=family_name, variant=variant, language=language, rng=rng,
            kernel=kernel, flags={"nx": side, "ny": side, "max_iter": max_iter},
            binding_exprs={"scale": 1, "max_iter": "max_iter", "nx": "nx", "ny": "ny"},
            description=description, block2d=(32, 8),
        )

    return build


def _pixel_x(dtv):
    return mul(
        var("scale", dtv),
        sub(Cast(Var("gx", DType.I32), dtv), _c(512.0, dtv), dtv),
        dtv,
    )


def _pixel_y(dtv):
    return mul(
        var("scale", dtv),
        sub(Cast(Var("gy", DType.I32), dtv), _c(512.0, dtv), dtv),
        dtv,
    )


family("mandelbrot", "mathheavy", tendency="cb")(
    _escape_iteration(
        "mandelbrot_kernel", "mandelbrot", _pixel_x, _pixel_y,
        "Mandelbrot escape-time iteration per pixel",
    )
)

family("julia_set", "mathheavy", tendency="cb")(
    _escape_iteration(
        "julia_kernel", "julia_set", _pixel_x, _pixel_y,
        "Julia-set escape-time iteration per pixel",
    )
)


@family("newton_roots", "mathheavy", tendency="cb")
def build_newton(variant: int, language: Language):
    rng = variant_rng("newton_roots", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    iters = int(rng.choice([32, 48, 64]))
    # Newton iteration for cube root: x <- (2x + a/x^2) / 3
    body = (
        Let("a_val", load("a_in", aff("gx"), dt), dt),
        Let("x", add(mul(_c(0.5, dt), var("a_val", dt), dt), _c(1.0, dt), dt), dt),
        For(
            "it", "iters",
            (
                Let("x2", mul(var("x", dt), var("x", dt), dt), dt),
                Assign(
                    "x",
                    mul(
                        _c(0.3333333, dt),
                        add(mul(_c(2.0, dt), var("x", dt), dt),
                            div(var("a_val", dt), var("x2", dt), dt), dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("root", aff("gx"), var("x", dt), dt),
    )
    kernel = Kernel(
        name="newton_cbrt_kernel",
        arrays=(ArrayDecl("a_in", dt, "n"), ArrayDecl("root", dt, "n", is_output=True)),
        params=(ScalarParam("iters", DType.I32), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="newton_roots", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "iters": iters},
        binding_exprs={"iters": "iters", "n": "n"},
        description="per-element Newton iteration for cube roots",
    )


@family("logistic_map", "mathheavy", tendency="cb")
def build_logistic(variant: int, language: Language):
    rng = variant_rng("logistic_map", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    iters = draw_iters(rng)
    body = (
        Let("x", load("x0", aff("gx"), dt), dt),
        For(
            "it", "iters",
            (
                Assign(
                    "x",
                    mul(mul(var("r", dt), var("x", dt), dt),
                        sub(_c(1.0, dt), var("x", dt), dt), dt),
                    dt,
                ),
            ),
        ),
        Store("x_out", aff("gx"), var("x", dt), dt),
    )
    kernel = Kernel(
        name="logistic_map_kernel",
        arrays=(ArrayDecl("x0", dt, "n"), ArrayDecl("x_out", dt, "n", is_output=True)),
        params=(ScalarParam("r", dt), ScalarParam("iters", DType.I32), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="logistic_map", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "iters": iters},
        binding_exprs={"r": 3, "iters": "iters", "n": "n"},
        description="iterated logistic map orbit computation",
    )


@family("mc_pi", "mathheavy", tendency="cb")
def build_mc_pi(variant: int, language: Language):
    rng = variant_rng("mc_pi", variant, language)
    dt = DType.F32
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    trials = int(rng.choice([128, 256, 512]))
    i32 = DType.I32
    xorshift = (
        Assign("state", BinOp(BinOpKind.XOR, var("state", i32),
                              BinOp(BinOpKind.SHL, var("state", i32), Const(13, i32), i32),
                              i32), i32),
        Assign("state", BinOp(BinOpKind.XOR, var("state", i32),
                              BinOp(BinOpKind.SHR, var("state", i32), Const(17, i32), i32),
                              i32), i32),
        Assign("state", BinOp(BinOpKind.XOR, var("state", i32),
                              BinOp(BinOpKind.SHL, var("state", i32), Const(5, i32), i32),
                              i32), i32),
    )
    body = (
        Let("state", BinOp(BinOpKind.ADD, Var("gx", i32), Const(12345, i32), i32), i32),
        Let("hits", Const(0, i32), i32),
        For(
            "t", "trials",
            xorshift
            + (
                Let("ux", mul(Cast(BinOp(BinOpKind.AND, var("state", i32),
                                         Const(0xFFFF, i32), i32), dt),
                              _c(1.0 / 65536.0, dt), dt), dt),
            )
            + xorshift
            + (
                Let("uy", mul(Cast(BinOp(BinOpKind.AND, var("state", i32),
                                         Const(0xFFFF, i32), i32), dt),
                              _c(1.0 / 65536.0, dt), dt), dt),
                Let("d2", fma(var("ux", dt), var("ux", dt),
                              mul(var("uy", dt), var("uy", dt), dt), dt), dt),
                Assign(
                    "hits",
                    add(var("hits", i32),
                        Select(BinOp(BinOpKind.LE, var("d2", dt), _c(1.0, dt), i32),
                               Const(1, i32), Const(0, i32), i32), i32),
                    i32,
                ),
            ),
        ),
        Store("counts", aff("gx"), var("hits", i32), i32),
    )
    kernel = Kernel(
        name="monte_carlo_pi",
        arrays=(ArrayDecl("counts", i32, "n", is_output=True),),
        params=(ScalarParam("trials", i32), ScalarParam("n", i32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="mc_pi", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "trials": trials},
        binding_exprs={"trials": "trials", "n": "n"},
        description="Monte-Carlo pi estimation with xorshift PRNG",
    )


@family("binomial_option", "mathheavy", tendency="cb")
def build_binomial(variant: int, language: Language):
    rng = variant_rng("binomial_option", variant, language)
    dt = _dt(variant)
    n = int(rng.choice([1 << 15, 1 << 16, 1 << 17]))
    steps = int(rng.choice([64, 96, 128]))
    body = (
        Let("s0", load("price", aff("gx"), dt), dt),
        Let("value", mul(_c(0.0, dt), var("s0", dt), dt), dt),
        For(
            "i", "steps",
            (
                Let(
                    "node",
                    mul(var("s0", dt),
                        call(CallFn.EXP,
                             mul(var("sigma", dt),
                                 sub(mul(_c(2.0, dt), Cast(Var("i", DType.I32), dt), dt),
                                     var("steps_f", dt), dt), dt),
                             dtype=dt), dt),
                    dt,
                ),
                Let(
                    "payoff",
                    BinOp(BinOpKind.MAX,
                          sub(var("node", dt), var("strike", dt), dt),
                          _c(0.0, dt), dt),
                    dt,
                ),
                Assign("value",
                       fma(var("payoff", dt), var("disc", dt), var("value", dt), dt), dt),
            ),
        ),
        Store("option", aff("gx"), var("value", dt), dt),
    )
    kernel = Kernel(
        name="binomial_option_kernel",
        arrays=(ArrayDecl("price", dt, "n"), ArrayDecl("option", dt, "n", is_output=True)),
        params=(
            ScalarParam("sigma", dt),
            ScalarParam("strike", dt),
            ScalarParam("disc", dt),
            ScalarParam("steps_f", dt),
            ScalarParam("steps", DType.I32),
            ScalarParam("n", DType.I32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="binomial_option", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "steps": steps},
        binding_exprs={
            "sigma": 1, "strike": 100, "disc": 1, "steps_f": steps,
            "steps": "steps", "n": "n",
        },
        description="binomial-tree option valuation per element",
    )


@family("gelu_map", "mathheavy", tendency="mixed")
def build_gelu(variant: int, language: Language):
    rng = variant_rng("gelu_map", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    x = var("x", dt)
    inner = mul(
        _c(0.7978845608, dt),
        fma(mul(_c(0.044715, dt), mul(x, x, dt), dt), x, x, dt),
        dt,
    )
    body = (
        Let("x", load("inp", aff("gx"), dt), dt),
        Store(
            "out", aff("gx"),
            mul(mul(_c(0.5, dt), x, dt),
                add(_c(1.0, dt), call(CallFn.TANH, inner, dtype=dt), dt), dt),
            dt,
        ),
    )
    kernel = Kernel(
        name="gelu_kernel",
        arrays=(ArrayDecl("inp", dt, "n"), ArrayDecl("out", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="gelu_map", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="tanh-approximation GELU activation",
    )


@family("softplus_chain", "mathheavy", tendency="mixed")
def build_softplus(variant: int, language: Language):
    rng = variant_rng("softplus_chain", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    depth = int(rng.choice([4, 6, 8]))
    body: list = [Let("x", load("inp", aff("gx"), dt), dt)]
    for _ in range(depth):
        body.append(
            Assign(
                "x",
                call(CallFn.LOG,
                     add(_c(1.0, dt), call(CallFn.EXP, var("x", dt), dtype=dt), dt),
                     dtype=dt),
                dt,
            )
        )
    body.append(Store("out", aff("gx"), var("x", dt), dt))
    kernel = Kernel(
        name="softplus_chain_kernel",
        arrays=(ArrayDecl("inp", dt, "n"), ArrayDecl("out", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=tuple(body),
        work_items="n",
    )
    return assemble(
        family="softplus_chain", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description=f"chain of {depth} softplus activations",
    )


@family("bessel_series", "mathheavy", tendency="mixed")
def build_bessel(variant: int, language: Language):
    rng = variant_rng("bessel_series", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    terms = int(rng.choice([16, 24, 32]))
    body = (
        Let("x", load("inp", aff("gx"), dt), dt),
        Let("x2", mul(mul(_c(0.25, dt), var("x", dt), dt), var("x", dt), dt), dt),
        Let("term", _c(1.0, dt), dt),
        Let("acc", _c(1.0, dt), dt),
        For(
            "k1", "terms",
            (
                Let("kf", Cast(add(Var("k1", DType.I32), Const(1, DType.I32), DType.I32), dt), dt),
                Assign(
                    "term",
                    div(mul(var("term", dt), var("x2", dt), dt),
                        mul(var("kf", dt), var("kf", dt), dt), dt),
                    dt,
                ),
                Assign("acc", sub(var("acc", dt), var("term", dt), dt), dt),
            ),
        ),
        Store("out", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="bessel_j0_series",
        arrays=(ArrayDecl("inp", dt, "n"), ArrayDecl("out", dt, "n", is_output=True)),
        params=(ScalarParam("terms", DType.I32), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="bessel_series", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "terms": terms},
        binding_exprs={"terms": "terms", "n": "n"},
        description="Bessel J0 power-series evaluation",
    )


@family("horner_poly", "mathheavy", tendency="mixed")
def build_horner(variant: int, language: Language):
    rng = variant_rng("horner_poly", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    degree = int(rng.choice([31, 63, 127]))
    body = (
        Let("x", load("inp", aff("gx"), dt), dt),
        Let("acc", load("coef", aff(const=0), dt), dt),
        For(
            "d", "degree",
            (
                Assign(
                    "acc",
                    fma(var("acc", dt), var("x", dt),
                        load("coef", aff("d", const=1), dt), dt),
                    dt,
                ),
            ),
        ),
        Store("out", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="horner_eval_kernel",
        arrays=(
            ArrayDecl("inp", dt, "n"),
            ArrayDecl("coef", dt, "m"),
            ArrayDecl("out", dt, "n", is_output=True),
        ),
        params=(ScalarParam("degree", DType.I32), ScalarParam("n", DType.I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="horner_poly", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "degree": degree, "m": degree + 1},
        binding_exprs={"degree": "degree", "n": "n"},
        description=f"degree-{degree} polynomial Horner evaluation",
    )


@family("cordic_rotate", "mathheavy", tendency="cb")
def build_cordic(variant: int, language: Language):
    rng = variant_rng("cordic_rotate", variant, language)
    dt = DType.F32
    i32 = DType.I32
    n = draw_size_1d(rng)
    rounds = int(rng.choice([24, 32, 48]))
    body = (
        Let("x", load("xs", aff("gx"), dt), dt),
        Let("y", load("ys", aff("gx"), dt), dt),
        Let("z", load("angle", aff("gx"), dt), dt),
        For(
            "k", "rounds",
            (
                Let("pw", call(CallFn.EXP,
                               mul(_c(-0.6931472, dt), Cast(Var("k", i32), dt), dt),
                               dtype=dt), dt),
                Let(
                    "sigma",
                    Select(BinOp(BinOpKind.GE, var("z", dt), _c(0.0, dt), i32),
                           _c(1.0, dt), _c(-1.0, dt), dt),
                    dt,
                ),
                Let("xn", sub(var("x", dt),
                              mul(mul(var("sigma", dt), var("pw", dt), dt),
                                  var("y", dt), dt), dt), dt),
                Assign("y", fma(mul(var("sigma", dt), var("pw", dt), dt),
                                var("x", dt), var("y", dt), dt), dt),
                Assign("x", var("xn", dt), dt),
                Assign("z", sub(var("z", dt),
                                mul(var("sigma", dt),
                                    load("atan_tab", aff("k"), dt), dt), dt), dt),
            ),
        ),
        Store("xs_out", aff("gx"), var("x", dt), dt),
        Store("ys_out", aff("gx"), var("y", dt), dt),
    )
    kernel = Kernel(
        name="cordic_rotation_kernel",
        arrays=(
            ArrayDecl("xs", dt, "n"),
            ArrayDecl("ys", dt, "n"),
            ArrayDecl("angle", dt, "n"),
            ArrayDecl("atan_tab", dt, "rounds"),
            ArrayDecl("xs_out", dt, "n", is_output=True),
            ArrayDecl("ys_out", dt, "n", is_output=True),
        ),
        params=(ScalarParam("rounds", i32), ScalarParam("n", i32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="cordic_rotate", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "rounds": rounds},
        binding_exprs={"rounds": "rounds", "n": "n"},
        description="CORDIC vector rotation iterations",
    )


@family("gammaln_series", "mathheavy", tendency="mixed")
def build_gammaln(variant: int, language: Language):
    rng = variant_rng("gammaln_series", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    # Stirling series with five correction terms.
    x = var("x", dt)
    inv = div(_c(1.0, dt), x, dt)
    body = (
        Let("x", load("inp", aff("gx"), dt), dt),
        Let("inv", inv, dt),
        Let("inv2", mul(var("inv", dt), var("inv", dt), dt), dt),
        Let(
            "series",
            fma(var("inv2", dt),
                fma(var("inv2", dt),
                    fma(var("inv2", dt), _c(-0.000595238, dt), _c(0.000793651, dt), dt),
                    _c(-0.00277778, dt), dt),
                _c(0.0833333, dt), dt),
            dt,
        ),
        Store(
            "out", aff("gx"),
            add(
                fma(sub(x, _c(0.5, dt), dt), call(CallFn.LOG, x, dtype=dt),
                    sub(_c(0.9189385, dt), x, dt), dt),
                mul(var("series", dt), var("inv", dt), dt),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="lgamma_stirling_kernel",
        arrays=(ArrayDecl("inp", dt, "n"), ArrayDecl("out", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="gammaln_series", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description="log-gamma via Stirling series",
    )


@family("sigmoid_deep", "mathheavy", tendency="mixed")
def build_sigmoid_deep(variant: int, language: Language):
    rng = variant_rng("sigmoid_deep", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    depth = int(rng.choice([6, 8, 12]))
    body: list = [Let("x", load("inp", aff("gx"), dt), dt)]
    for _ in range(depth):
        body.append(
            Assign(
                "x",
                div(_c(1.0, dt),
                    add(_c(1.0, dt),
                        call(CallFn.EXP, sub(_c(0.0, dt), var("x", dt), dt), dtype=dt),
                        dt),
                    dt),
                dt,
            )
        )
    body.append(Store("out", aff("gx"), var("x", dt), dt))
    kernel = Kernel(
        name="sigmoid_chain_kernel",
        arrays=(ArrayDecl("inp", dt, "n"), ArrayDecl("out", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=tuple(body),
        work_items="n",
    )
    return assemble(
        family="sigmoid_deep", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n}, binding_exprs={"n": "n"},
        description=f"chain of {depth} sigmoid activations",
    )


@family("raytrace_spheres", "mathheavy", tendency="cb")
def build_raytrace(variant: int, language: Language):
    rng = variant_rng("raytrace_spheres", variant, language)
    dt = DType.F32
    side = int(rng.choice([768, 1024, 1536]))
    nspheres = int(rng.choice([64, 128, 256]))
    body = (
        Let("ox", mul(var("inv_w", dt), Cast(Var("gx", DType.I32), dt), dt), dt),
        Let("oy", mul(var("inv_w", dt), Cast(Var("gy", DType.I32), dt), dt), dt),
        Let("best_t", _c(1e30, dt), dt),
        For(
            "s", "nspheres",
            (
                Let("cx", load("sph", aff(("s", 4)), dt), dt),
                Let("cy", load("sph", aff(("s", 4), const=1), dt), dt),
                Let("cz", load("sph", aff(("s", 4), const=2), dt), dt),
                Let("rad", load("sph", aff(("s", 4), const=3), dt), dt),
                Let("lx_d", sub(var("cx", dt), var("ox", dt), dt), dt),
                Let("ly_d", sub(var("cy", dt), var("oy", dt), dt), dt),
                # ray direction is +z from the image plane: t_ca = cz
                Let(
                    "d2",
                    add(mul(var("lx_d", dt), var("lx_d", dt), dt),
                        mul(var("ly_d", dt), var("ly_d", dt), dt), dt),
                    dt,
                ),
                Let("r2", mul(var("rad", dt), var("rad", dt), dt), dt),
                If(
                    cond=BinOp(BinOpKind.LT, var("d2", dt), var("r2", dt), DType.I32),
                    then=(
                        Let(
                            "thc",
                            call(CallFn.SQRT, sub(var("r2", dt), var("d2", dt), dt),
                                 dtype=dt),
                            dt,
                        ),
                        Let("t_hit", sub(var("cz", dt), var("thc", dt), dt), dt),
                        Assign(
                            "best_t",
                            BinOp(BinOpKind.MIN, var("best_t", dt), var("t_hit", dt), dt),
                            dt,
                        ),
                    ),
                    taken_fraction=0.18,
                ),
            ),
        ),
        Store("depth", aff(("gy", "nx"), "gx"), var("best_t", dt), dt),
    )
    kernel = Kernel(
        name="raytrace_depth_kernel",
        arrays=(
            ArrayDecl("sph", dt, "4*nspheres"),
            ArrayDecl("depth", dt, "nx*ny", is_output=True),
        ),
        params=(
            ScalarParam("inv_w", dt),
            ScalarParam("nspheres", DType.I32),
            ScalarParam("nx", DType.I32),
            ScalarParam("ny", DType.I32),
        ),
        body=body,
        work_items="nx",
        work_items_y="ny",
    )
    return assemble(
        family="raytrace_spheres", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"nx": side, "ny": side, "nspheres": nspheres},
        binding_exprs={"inv_w": 1, "nspheres": "nspheres", "nx": "nx", "ny": "ny"},
        description="primary-ray sphere intersection depth map",
        block2d=(16, 16),
    )


@family("heston_paths", "mathheavy", tendency="cb")
def build_heston(variant: int, language: Language):
    rng = variant_rng("heston_paths", variant, language)
    dt = DType.F64 if variant in (1, 3) else DType.F32
    i32 = DType.I32
    n = int(rng.choice([1 << 16, 1 << 17, 1 << 18]))
    steps = int(rng.choice([64, 128, 256]))
    body = (
        Let("s_price", load("s0", aff("gx"), dt), dt),
        Let("v_vol", load("v0", aff("gx"), dt), dt),
        Let("state", add(Var("gx", i32), Const(424243, i32), i32), i32),
        For(
            "t", "steps",
            (
                Assign("state", BinOp(BinOpKind.XOR, Var("state", i32),
                                      BinOp(BinOpKind.SHL, Var("state", i32),
                                            Const(13, i32), i32), i32), i32),
                Assign("state", BinOp(BinOpKind.XOR, Var("state", i32),
                                      BinOp(BinOpKind.SHR, Var("state", i32),
                                            Const(17, i32), i32), i32), i32),
                Let("z_norm", mul(Cast(BinOp(BinOpKind.AND, Var("state", i32),
                                             Const(0xFFFF, i32), i32), dt),
                                  _c(3.0517578125e-05, dt), dt), dt),
                Assign(
                    "v_vol",
                    BinOp(
                        BinOpKind.MAX,
                        fma(var("kappa", dt),
                            sub(var("theta", dt), var("v_vol", dt), dt),
                            fma(mul(var("xi", dt),
                                    call(CallFn.SQRT, var("v_vol", dt), dtype=dt), dt),
                                var("z_norm", dt), var("v_vol", dt), dt), dt),
                        _c(0.0001, dt),
                        dt,
                    ),
                    dt,
                ),
                Assign(
                    "s_price",
                    mul(var("s_price", dt),
                        call(CallFn.EXP,
                             fma(call(CallFn.SQRT, var("v_vol", dt), dtype=dt),
                                 var("z_norm", dt),
                                 mul(_c(-0.5, dt), var("v_vol", dt), dt), dt),
                             dtype=dt), dt),
                    dt,
                ),
            ),
        ),
        Store("paths", aff("gx"), var("s_price", dt), dt),
    )
    kernel = Kernel(
        name="heston_path_kernel",
        arrays=(
            ArrayDecl("s0", dt, "n"),
            ArrayDecl("v0", dt, "n"),
            ArrayDecl("paths", dt, "n", is_output=True),
        ),
        params=(
            ScalarParam("kappa", dt),
            ScalarParam("theta", dt),
            ScalarParam("xi", dt),
            ScalarParam("steps", i32),
            ScalarParam("n", i32),
        ),
        body=body,
        work_items="n",
    )
    return assemble(
        family="heston_paths", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "steps": steps},
        binding_exprs={"kappa": 2, "theta": 1, "xi": 1, "steps": "steps", "n": "n"},
        description="Heston stochastic-volatility Monte-Carlo paths",
    )
