"""Reproduction-band tests: the paper's findings must hold, qualitatively
and within tolerance, for this build of the emulator.

These tests encode the *shape* claims of the paper (who wins, by roughly
what factor, where the crossovers are) rather than exact percentages —
per DESIGN.md §5. They are the contract that keeps repro/llm/config.py's
calibrated knobs honest.
"""

import pytest

from repro.eval.metrics import MetricReport
from repro.eval.rq1 import run_rq1

# Full-grid calibration sweeps are benchmark-adjacent: tier-2 only.
pytestmark = pytest.mark.slow
from repro.eval.table1 import PAPER_TABLE1
from repro.llm import get_model, non_reasoning_models, reasoning_models
from repro.prompts import build_classify_prompt


@pytest.fixture(scope="module")
def rq2_metrics(dataset):
    truths = [s.label for s in dataset.balanced]
    prompts = [build_classify_prompt(s, few_shot=False).text for s in dataset.balanced]
    out = {}
    for name in PAPER_TABLE1:
        model = get_model(name)
        preds = [model.complete(p).boundedness() for p in prompts]
        out[name] = MetricReport.from_predictions(truths, preds)
    return out


@pytest.fixture(scope="module")
def rq3_metrics(dataset):
    truths = [s.label for s in dataset.balanced]
    prompts = [build_classify_prompt(s, few_shot=True).text for s in dataset.balanced]
    out = {}
    for name in PAPER_TABLE1:
        model = get_model(name)
        preds = [model.complete(p).boundedness() for p in prompts]
        out[name] = MetricReport.from_predictions(truths, preds)
    return out


class TestRq1Bands:
    def test_reasoning_models_perfect(self):
        for name in ("o3-mini-high", "o3-mini", "o1-mini-2024-09-12"):
            r = run_rq1(get_model(name), num_rooflines=120)
            assert r.best_accuracy == 100.0, name
            assert r.best_accuracy_cot == 100.0, name

    def test_non_reasoning_band(self):
        """Paper: 90-91 plain for the GPT-4o family and Gemini."""
        for name in ("gemini-2.0-flash-001", "gpt-4o-2024-11-20", "gpt-4o-mini"):
            r = run_rq1(get_model(name), num_rooflines=120)
            assert 86.0 <= r.best_accuracy <= 96.0, (name, r.best_accuracy)

    def test_cot_helps_the_minis_to_perfection(self):
        """Paper: CoT lifts gpt-4o-mini from 90 to 100."""
        r = run_rq1(get_model("gpt-4o-mini"), num_rooflines=120)
        assert r.best_accuracy_cot == 100.0
        assert r.best_accuracy_cot > r.best_accuracy

    def test_cot_never_hurts_much(self):
        for name in ("gpt-4o-2024-11-20", "gemini-2.0-flash-001"):
            r = run_rq1(get_model(name), num_rooflines=120)
            assert r.best_accuracy_cot >= r.best_accuracy - 3.0, name


class TestRq2Bands:
    TOLERANCE = 3.5

    def test_accuracy_within_tolerance_of_paper(self, rq2_metrics):
        for name, paper in PAPER_TABLE1.items():
            measured = rq2_metrics[name].accuracy
            assert abs(measured - paper[2]) <= self.TOLERANCE, (
                name, measured, paper[2]
            )

    def test_best_models_hit_the_64_band(self, rq2_metrics):
        """Paper's headline: best models achieve up to 64% accuracy."""
        best = max(m.accuracy for m in rq2_metrics.values())
        assert 61.0 <= best <= 67.5

    def test_reasoning_beats_non_reasoning(self, rq2_metrics):
        """Paper: ~10 points separate reasoning from non-reasoning tiers."""
        top_reasoning = max(
            rq2_metrics[m.name].accuracy for m in reasoning_models()
        )
        weak_non_reasoning = [
            rq2_metrics[m.name].accuracy
            for m in non_reasoning_models()
            if m.name.startswith("gpt-4o")
        ]
        assert top_reasoning - max(weak_non_reasoning) >= 6.0

    def test_mini_models_near_chance(self, rq2_metrics):
        for name in ("gpt-4o-mini", "gpt-4o-mini-2024-07-18"):
            rep = rq2_metrics[name]
            assert 46.0 <= rep.accuracy <= 56.0, name
            assert abs(rep.mcc) <= 12.0, name  # MCC ≈ 0: random predictor

    def test_gpt4o_low_macro_f1(self, rq2_metrics):
        """Paper: gpt-4o's macro-F1 (41) sits far below its accuracy (52) —
        a biased predictor."""
        rep = rq2_metrics["gpt-4o-2024-11-20"]
        assert rep.accuracy - rep.macro_f1 >= 8.0

    def test_reasoning_mcc_clearly_positive(self, rq2_metrics):
        for name in ("o3-mini-high", "o1", "o3-mini"):
            assert rq2_metrics[name].mcc >= 18.0, name

    def test_model_ordering_tracks_paper(self, rq2_metrics):
        from repro.eval.report import ordering_agreement

        names = list(PAPER_TABLE1)
        paper_vals = [PAPER_TABLE1[n][2] for n in names]
        ours = [rq2_metrics[n].accuracy for n in names]
        assert ordering_agreement(paper_vals, ours) >= 0.75


class TestRq3Bands:
    TOLERANCE = 3.5

    def test_accuracy_within_tolerance_of_paper(self, rq3_metrics):
        for name, paper in PAPER_TABLE1.items():
            measured = rq3_metrics[name].accuracy
            assert abs(measured - paper[5]) <= self.TOLERANCE, (
                name, measured, paper[5]
            )

    def test_reasoning_models_do_not_gain(self, rq2_metrics, rq3_metrics):
        """Paper: few-shot examples barely change (or slightly hurt) the
        reasoning models."""
        for m in reasoning_models():
            delta = rq3_metrics[m.name].accuracy - rq2_metrics[m.name].accuracy
            assert delta <= 2.0, (m.name, delta)

    def test_o1_drops_with_examples(self, rq2_metrics, rq3_metrics):
        """Paper: o1 falls 64.12 → 61.47 when examples bloat the context."""
        delta = rq3_metrics["o1"].accuracy - rq2_metrics["o1"].accuracy
        assert -6.0 <= delta <= -1.0

    def test_minis_gain_marginally(self, rq2_metrics, rq3_metrics):
        """Paper: ~2-point accuracy gain for the mini non-reasoning models."""
        deltas = [
            rq3_metrics[n].accuracy - rq2_metrics[n].accuracy
            for n in ("gpt-4o-mini", "gpt-4o-mini-2024-07-18")
        ]
        assert all(d >= -1.0 for d in deltas)
        assert max(d for d in deltas) >= 0.5

    def test_gemini_f1_degrades(self, rq2_metrics, rq3_metrics):
        """Paper: gemini's macro-F1 drops sharply (55.45 → 48.96) with real
        examples."""
        drop = rq2_metrics["gemini-2.0-flash-001"].macro_f1 - (
            rq3_metrics["gemini-2.0-flash-001"].macro_f1
        )
        assert drop >= 2.0
