"""Tests for the CUDA and OMP code generators.

Checks structural properties of the emitted source: balanced braces, kernel
signatures, launch syntax, include discipline, and the multi-file layout the
dataset concatenation relies on.
"""

import re

import pytest

from repro.kernels.codegen import render_cuda, render_omp, render_program
from repro.kernels.families import get_family
from repro.types import Language


@pytest.fixture(scope="module")
def cuda_saxpy():
    return render_cuda(get_family("saxpy").build(0, Language.CUDA))


@pytest.fixture(scope="module")
def omp_saxpy():
    return render_omp(get_family("saxpy").build(0, Language.OMP))


def _balanced(text: str) -> bool:
    return text.count("{") == text.count("}") and text.count("(") == text.count(")")


class TestCudaCodegen:
    def test_kernel_signature(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        assert "__global__ void saxpy_kernel(" in src

    def test_thread_index_and_guard(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        assert "blockIdx.x * blockDim.x + threadIdx.x" in src
        assert re.search(r"if \(gx >= \w+\) return;", src)

    def test_launch_syntax(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        assert "<<<grid0, block0>>>" in src

    def test_memory_management(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        assert "cudaMalloc" in src
        assert "cudaMemcpyHostToDevice" in src
        assert "cudaMemcpyDeviceToHost" in src
        assert "cudaFree" in src

    def test_balanced_braces(self, cuda_saxpy):
        for f in cuda_saxpy.files:
            assert _balanced(f.text), f.filename

    def test_timing_events(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        assert "cudaEventElapsedTime" in src

    def test_language_mismatch_rejected(self):
        spec = get_family("saxpy").build(0, Language.OMP)
        with pytest.raises(ValueError):
            render_cuda(spec)

    def test_shared_memory_kernel_renders(self):
        spec = get_family("gemm_tiled").build(0, Language.CUDA)
        src = render_cuda(spec).concatenated_source()
        assert "__shared__" in src
        assert "__syncthreads();" in src
        assert "const int lx = threadIdx.x;" in src

    def test_atomic_renders(self):
        spec = get_family("dotprod").build(0, Language.CUDA)
        src = render_cuda(spec).concatenated_source()
        assert "atomicAdd(&" in src

    def test_argv_parsing_present(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        assert 'strcmp(argv[i], "--n")' in src


class TestOmpCodegen:
    def test_offload_pragma(self, omp_saxpy):
        src = omp_saxpy.concatenated_source()
        assert "#pragma omp target teams distribute parallel for" in src

    def test_target_data_mapping(self, omp_saxpy):
        src = omp_saxpy.concatenated_source()
        assert "#pragma omp target data" in src
        assert "map(to:" in src
        assert "map(tofrom:" in src

    def test_no_cuda_artifacts(self, omp_saxpy):
        src = omp_saxpy.concatenated_source()
        assert "cudaMalloc" not in src
        assert "__global__" not in src
        assert "<<<" not in src

    def test_balanced_braces(self, omp_saxpy):
        for f in omp_saxpy.files:
            assert _balanced(f.text), f.filename

    def test_2d_collapse(self):
        spec = get_family("gemm_naive").build(0, Language.OMP)
        src = render_omp(spec).concatenated_source()
        assert "collapse(2)" in src

    def test_atomic_pragma(self):
        spec = get_family("dotprod").build(0, Language.OMP)
        src = render_omp(spec).concatenated_source()
        assert "#pragma omp atomic update" in src

    def test_shared_memory_rejected(self):
        from repro.kernels.codegen.omp import render_kernel

        spec = get_family("gemm_tiled").build(0, Language.CUDA)
        with pytest.raises(ValueError):
            render_kernel(spec.first_kernel.kernel, 256)

    def test_language_mismatch_rejected(self):
        spec = get_family("saxpy").build(0, Language.CUDA)
        with pytest.raises(ValueError):
            render_omp(spec)


class TestFileLayout:
    def test_split_files_have_header(self, mini_corpus):
        split_specs = [p for p in mini_corpus.programs if p.split_files]
        assert split_specs, "corpus should contain split-file programs"
        for spec in split_specs[:5]:
            rendered = render_program(spec)
            names = [f.filename for f in rendered.files]
            assert any(n.startswith("kernels.") for n in names)
            assert any(n.startswith("main.") for n in names)

    def test_util_header_emitted(self, mini_corpus):
        with_util = [p for p in mini_corpus.programs if p.util_header]
        assert with_util, "corpus should contain util-header programs"
        for spec in with_util[:5]:
            rendered = render_program(spec)
            names = [f.filename for f in rendered.files]
            assert "benchmark_utils.h" in names
            assert '#include "benchmark_utils.h"' in rendered.concatenated_source()

    def test_reference_impl_for_heavy_programs(self, mini_corpus):
        heavy = [p for p in mini_corpus.programs if p.util_header >= 2]
        assert heavy, "corpus should contain heavyweight programs"
        rendered = render_program(heavy[0])
        assert any(f.filename == "reference_impl.h" for f in rendered.files)

    def test_concatenation_banners(self, cuda_saxpy):
        src = cuda_saxpy.concatenated_source()
        for f in cuda_saxpy.files:
            assert f"// ===== file: {f.filename} =====" in src

    def test_license_banner_on_main(self, cuda_saxpy):
        assert "Permission is hereby granted" in cuda_saxpy.concatenated_source()

    def test_first_kernel_appears_before_others(self, mini_corpus):
        """The profiled kernel must be the first kernel in source order —
        the dataset's 'first kernel of the program' rule depends on it."""
        from repro.analysis import find_kernels

        for spec in mini_corpus.programs[:12]:
            rendered = render_program(spec)
            found = find_kernels(rendered.concatenated_source(), spec.language)
            assert found, spec.uid
            assert found[0].name == spec.first_kernel.kernel.name, spec.uid
