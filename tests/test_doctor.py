"""Store doctor: every injector corruption class detected, repair heals.

``diagnose_store`` must classify each damage class the fault injector can
produce — torn writes, forged index spans, version skew, stale tmp files
— plus organically-occurring ones (bad magic, shadowed legacy segments,
corrupt legacy entries), all without modifying a byte. ``repair_store``
quarantines or deletes exactly what was reported, after which the store
re-attaches clean and every surviving read works.
"""

import json

import pytest

from repro.eval.engine import CachedResponse, DiskResponseStore
from repro.store.doctor import (
    QUARANTINE_DIRNAME,
    diagnose_store,
    doctor_store,
    quiet_attach,
)
from repro.util.faults import FaultPlan, set_active_fault_plan


def _response(i: int) -> CachedResponse:
    return CachedResponse(
        text=f"Compute {i}",
        input_tokens=i,
        output_tokens=1,
        reasoning_tokens=0,
        model="test-model",
    )


def _keys(n: int) -> list[str]:
    return [f"{i:02x}" + "0" * 62 for i in range(n)]


def _populated(tmp_path, n=3) -> DiskResponseStore:
    store = DiskResponseStore(tmp_path / "cache")
    for i, key in enumerate(_keys(n)):
        store.put(key, _response(i))
    return store


def _snapshot(root):
    return {
        p.name: p.read_bytes() for p in sorted(root.iterdir()) if p.is_file()
    }


class TestDiagnosis:
    def test_healthy_store_reports_nothing(self, tmp_path):
        report = diagnose_store(_populated(tmp_path), "responses")
        assert report.healthy
        assert report.scanned == 3
        assert "healthy" in report.render()

    @pytest.mark.parametrize("kind", [
        "torn_write", "forged_index", "version_skew", "stale_tmp",
    ])
    def test_each_injector_class_detected_without_modification(
        self, tmp_path, kind
    ):
        set_active_fault_plan(FaultPlan.parse(f"seed=9;{kind}:rate=1"))
        store = _populated(tmp_path)
        set_active_fault_plan(None)
        before = _snapshot(store.root)

        with quiet_attach():
            probe = DiskResponseStore(store.root)
        report = diagnose_store(probe, "responses")

        assert {i.kind for i in report.issues} == {kind}
        # Dry diagnosis is read-only: byte-identical directory afterwards.
        assert _snapshot(store.root) == before

    def test_enospc_degrades_to_no_segment(self, tmp_path):
        set_active_fault_plan(FaultPlan.parse("enospc:rate=1"))
        store = _populated(tmp_path)
        set_active_fault_plan(None)
        # The injected ENOSPC vetoed every write; nothing durable, and a
        # store with no files is trivially healthy.
        assert diagnose_store(store, "responses").healthy
        assert store.get(_keys(1)[0]) is None

    def test_bad_magic_reads_as_corrupt(self, tmp_path):
        store = _populated(tmp_path)
        seg = store._segment_files()[0]
        seg.write_bytes(b"JUNKJUNKJUNKJUNKJUNKJUNK")
        report = diagnose_store(store, "responses")
        assert [i.kind for i in report.issues] == ["corrupt"]

    def test_garbled_entry_blob_reads_as_bad_entry(self, tmp_path):
        store = _populated(tmp_path, n=1)
        seg = store._segment_files()[0]
        data = seg.read_bytes()
        # Same length, so the header's total still matches: only the
        # tail of the entry blob is garbage — not-JSON, not torn.
        seg.write_bytes(data[:-4] + b"\xff\xff\xff\xff")
        kinds = {i.kind for i in diagnose_store(store, "responses").issues}
        assert kinds == {"bad_entry"}

    def test_shadowed_legacy_twin_detected(self, tmp_path):
        store = _populated(tmp_path, n=1)
        seg = store._segment_files()[0]
        legacy = seg.with_suffix(".json")
        legacy.write_text(json.dumps({
            "version": store.version, "key": _keys(1)[0], "entries": {},
        }))
        kinds = {i.kind for i in diagnose_store(store, "responses").issues}
        assert kinds == {"shadowed_legacy"}

    def test_corrupt_legacy_entry_file(self, tmp_path):
        store = _populated(tmp_path, n=1)
        key = _keys(1)[0]
        shard = store.root / key[:2]
        shard.mkdir()
        (shard / f"{key}.json").write_text("{torn")
        kinds = {i.kind for i in diagnose_store(store, "responses").issues}
        assert kinds == {"corrupt_entry"}


class TestRepair:
    def test_repair_quarantines_and_store_reattaches_clean(self, tmp_path):
        set_active_fault_plan(FaultPlan.parse("seed=9;torn_write:rate=1"))
        store = _populated(tmp_path)
        set_active_fault_plan(None)
        report = doctor_store(store, "responses", repair=True)
        assert report.repaired == len(report.issues) > 0
        quarantine = store.root / QUARANTINE_DIRNAME
        assert sorted(p.name for p in quarantine.iterdir()) == sorted(
            i.path.name for i in report.issues
        )
        # Clean on re-attach: nothing left to report, reads never raise.
        fresh = DiskResponseStore(store.root)
        assert diagnose_store(fresh, "responses").healthy
        for key in _keys(3):
            assert fresh.get(key) is None  # quarantined, so a miss

    def test_repair_deletes_trash_kinds(self, tmp_path):
        store = _populated(tmp_path, n=1)
        seg = store._segment_files()[0]
        legacy = seg.with_suffix(".json")
        legacy.write_text(json.dumps({
            "version": store.version, "key": _keys(1)[0], "entries": {},
        }))
        tmp = store.root / "responses-00.tmp.3999999.0"
        tmp.write_bytes(b"half a segment")
        with quiet_attach():
            probe = DiskResponseStore(store.root)
        report = doctor_store(probe, "responses", repair=True)
        assert {i.kind for i in report.issues} == {
            "shadowed_legacy", "stale_tmp",
        }
        assert not legacy.exists()
        assert not tmp.exists()
        assert not (store.root / QUARANTINE_DIRNAME).exists()
        # The healthy binary twin survived untouched.
        assert DiskResponseStore(store.root).get(_keys(1)[0]) == _response(0)

    def test_quarantine_name_collisions_get_numeric_suffixes(self, tmp_path):
        store = _populated(tmp_path, n=1)
        seg = store._segment_files()[0]
        healthy = seg.read_bytes()
        for expected in (seg.name, f"{seg.name}.1"):
            seg.write_bytes(healthy[: len(healthy) - 5])
            report = doctor_store(store, "responses", repair=True)
            assert report.repaired == 1
            assert (store.root / QUARANTINE_DIRNAME / expected).exists()

    def test_repaired_store_surviving_reads_work(self, tmp_path):
        store = _populated(tmp_path, n=4)
        segments = store._segment_files()
        torn = segments[0]
        torn.write_bytes(torn.read_bytes()[:-7])
        doctor_store(store, "responses", repair=True)
        fresh = DiskResponseStore(store.root)
        hits = [key for key in _keys(4) if fresh.get(key) is not None]
        # Every key outside the quarantined segment still round-trips.
        assert len(hits) == 3


class TestQuietAttach:
    def test_quiet_attach_preserves_stale_tmp(self, tmp_path):
        store = _populated(tmp_path, n=1)
        leak = store.root / "responses-aa.tmp.3999999.0"
        leak.write_bytes(b"leaked by a dead writer")
        with quiet_attach():
            DiskResponseStore(store.root)
        assert leak.exists()  # a normal attach would have swept it
        DiskResponseStore(store.root)
        assert not leak.exists()

    def test_quiet_attach_restores_the_switch_on_error(self, tmp_path):
        from repro.store.base import ArtifactStore

        with pytest.raises(RuntimeError):
            with quiet_attach():
                assert ArtifactStore.ATTACH_SWEEP is False
                raise RuntimeError("boom")
        assert ArtifactStore.ATTACH_SWEEP is True
