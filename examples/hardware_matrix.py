"""Two-GPU label-flip analysis with ``repro.eval.matrix``.

The paper asks whether LLMs can reason about hardware ceilings, but tests
against a single GPU. This example re-profiles the corpus on a V100 and an
H100, finds the kernels whose compute-/bandwidth-bound ground truth *flips*
between those rooflines, and checks which models track the flip (predict
the device-specific truth on both GPUs) rather than answering from the
code alone. Equivalent CLI::

    repro-paper matrix --gpus v100,h100 --model all --jobs 4 --backend process

Run:  python examples/hardware_matrix.py
"""

from repro.dataset import paper_dataset
from repro.eval.engine import EvalEngine
from repro.eval.matrix import run_matrix, scenario_samples
from repro.llm import get_model
from repro.roofline.hardware import get_gpu, short_gpu_name

MODELS = ("o3-mini-high", "gemini-2.0-flash-001", "gpt-4o-mini")
GPUS = ("V100", "H100")
SLICE = 120  # kernels per device; the full sweep uses all 340


gpus = [get_gpu(n) for n in GPUS]
models = [get_model(n) for n in MODELS]
uids = tuple(s.uid for s in paper_dataset(jobs=0).balanced[:SLICE])

# Where do the rooflines actually differ? H100 has ~3.6x the FP32 peak of
# V100 but only ~2.3x the bandwidth, so its ridge points sit at higher
# arithmetic intensity: kernels near V100's ridge go bandwidth-bound.
for gpu in gpus:
    print(f"{short_gpu_name(gpu.name):6s} "
          f"SP {gpu.sp_peak_gflops:8.0f} GFLOP/s  "
          f"BW {gpu.bandwidth_gbs:6.0f} GB/s")

labels = {
    gpu.name: {s.uid: s.label for s in scenario_samples(gpu, uids=uids)}
    for gpu in gpus
}
v100, h100 = (labels[g.name] for g in gpus)
flipped = [uid for uid in v100 if v100[uid] != h100[uid]]
print(f"\n{len(flipped)} of {SLICE} kernels change class V100 -> H100, e.g.:")
for uid in flipped[:5]:
    print(f"  {uid}: {v100[uid].value} -> {h100[uid].value}")

# Sweep the grid with one shared engine; the process backend makes the cold
# pass scale with cores (the emulated models are pure-Python CPU work).
engine = EvalEngine(jobs=0, backend="process")
result = run_matrix(models, gpus, rqs=("rq2",), limit=SLICE, engine=engine)
print()
print(result.render(flip_limit=10))
print(f"\ncache: {engine.stats.summary()}")
