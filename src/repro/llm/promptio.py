"""Prompt parsing — the emulator's "language understanding" front end.

The emulator receives exactly the prompt strings the paper's figures define
and must recover the structured facts from them (hardware numbers, the
queried kernel's name and language, argv, the code block, whether the shots
carry chain-of-thought). It never sees any structured side channel — all
information flows through the prompt text, as it would for a real API model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.types import Language


@dataclass(frozen=True)
class RooflineQuery:
    """A parsed RQ1 arithmetic question (the final question in the prompt)."""

    bandwidth_gbs: float
    peak_gflops: float
    ai: float
    has_chain_of_thought_examples: bool
    num_examples: int


@dataclass(frozen=True)
class ClassifyQuery:
    """A parsed RQ2/RQ3 classification request."""

    language: Language
    kernel_name: str
    gpu_name: str
    sp_peak: float
    dp_peak: float
    int_peak: float
    bandwidth: float
    block: tuple[int, int, int]
    grid: tuple[int, int, int]
    argv: str
    source: str
    has_real_examples: bool

    def argv_values(self) -> dict[str, int]:
        """Integer flag values recoverable from the command line."""
        out: dict[str, int] = {}
        toks = self.argv.split()
        for i, t in enumerate(toks):
            if t.startswith("--") and i + 1 < len(toks):
                try:
                    out[t[2:]] = int(toks[i + 1])
                except ValueError:
                    continue
        return out

    def balance_points(self) -> dict:
        from repro.types import OpClass

        return {
            OpClass.SP: self.sp_peak / self.bandwidth,
            OpClass.DP: self.dp_peak / self.bandwidth,
            OpClass.INT: self.int_peak / self.bandwidth,
        }


_QUESTION_RE = re.compile(
    r"max bandwidth of\s+([\d.]+)\s*GB/s.*?peak performance of\s+([\d.]+)\s*"
    r"GFLOP/s.*?Arithmetic Intensity of\s+([\d.]+)\s*FLOP/Byte",
    re.DOTALL,
)


def parse_roofline_query(prompt: str) -> RooflineQuery | None:
    """Parse an RQ1 prompt; None when the text is not an RQ1 question."""
    matches = _QUESTION_RE.findall(prompt)
    if not matches:
        return None
    # The unanswered question is the last one; earlier ones are examples.
    bw, peak, ai = (float(x) for x in matches[-1])
    return RooflineQuery(
        bandwidth_gbs=bw,
        peak_gflops=peak,
        ai=ai,
        has_chain_of_thought_examples="Thought:" in prompt,
        num_examples=max(0, len(matches) - 1),
    )


_CLASSIFY_RE = re.compile(
    r"Classify the (CUDA|OMP) kernel called ([A-Za-z_][A-Za-z_0-9]*)"
)
_GPU_RE = re.compile(r"execute on is a (.+?) with:")
_SP_RE = re.compile(r"peak single-precision performance of\s+([\d.]+)\s*GFLOP/s")
_DP_RE = re.compile(r"peak double-precision performance of\s+([\d.]+)\s*GFLOP/s")
_INT_RE = re.compile(r"peak integer performance of\s+([\d.]+)\s*GINTOP/s")
_BW_RE = re.compile(r"max bandwidth of\s+([\d.]+)\s*GB/s")
_DIMS_RE = re.compile(
    r"block and grid sizes of the invoked kernel are "
    r"\((\d+),(\d+),(\d+)\) and \((\d+),(\d+),(\d+)\)"
)
_ARGV_RE = re.compile(r"command-line arguments:\s*(.+?)\.\s*$", re.MULTILINE)
_SOURCE_RE = re.compile(
    r"Below is the source code of the requested (?:CUDA|OMP) kernel:\s*\n"
)


def parse_classify_query(prompt: str) -> ClassifyQuery | None:
    """Parse a Figure 4 classification prompt; None when not one."""
    m = _CLASSIFY_RE.search(prompt)
    if m is None:
        return None
    lang = Language.CUDA if m.group(1) == "CUDA" else Language.OMP
    kernel_name = m.group(2)

    def grab(rx: re.Pattern, default: float = 0.0) -> float:
        mm = rx.search(prompt)
        return float(mm.group(1)) if mm else default

    gm = _GPU_RE.search(prompt)
    dm = _DIMS_RE.search(prompt)
    am = _ARGV_RE.search(prompt)
    sm = _SOURCE_RE.search(prompt)
    if sm is None:
        return None
    block = tuple(int(dm.group(i)) for i in (1, 2, 3)) if dm else (256, 1, 1)
    grid = tuple(int(dm.group(i)) for i in (4, 5, 6)) if dm else (1, 1, 1)
    return ClassifyQuery(
        language=lang,
        kernel_name=kernel_name,
        gpu_name=gm.group(1).strip() if gm else "unknown GPU",
        sp_peak=grab(_SP_RE, 1.0),
        dp_peak=grab(_DP_RE, 1.0),
        int_peak=grab(_INT_RE, 1.0),
        bandwidth=grab(_BW_RE, 1.0),
        block=block,  # type: ignore[arg-type]
        grid=grid,  # type: ignore[arg-type]
        argv=am.group(1).strip() if am else "",
        source=prompt[sm.end():],
        has_real_examples="Kernel Source Code (CUDA):" in prompt
        or "Kernel Source Code (OMP):" in prompt,
    )


def estimate_prompt_tokens(prompt: str) -> int:
    """Cheap deterministic token estimate used for attention modelling and
    usage accounting (≈3 chars per token on code-heavy prompts)."""
    return max(1, len(prompt) // 3)
