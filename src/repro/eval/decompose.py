"""Question-decomposition experiment driver (paper §4 future work).

Runs the three-step successive-prompting protocol of
:mod:`repro.prompts.decompose` over the balanced dataset and compares
against the zero-shot (RQ2) baseline. The driver threads each model's own
intermediate answers into the next prompt, exactly how decomposition
harnesses wrap real chat APIs; malformed intermediate answers fall back to a
Bandwidth verdict (scored as-is).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dataset import Sample, paper_dataset
from repro.eval.engine import EvalEngine
from repro.eval.metrics import MetricReport
from repro.llm.base import LlmModel
from repro.llm.pricing import UsageMeter
from repro.util.parallel import parallel_map
from repro.prompts.decompose import (
    build_step1_prompt,
    build_step2_prompt,
    build_step3_prompt,
    parse_step1_answer,
    parse_step2_answer,
)
from repro.roofline.hardware import GpuSpec, default_gpu
from repro.types import Boundedness


class _UsageRecorder:
    """Meter-shaped sink that defers accumulation (keeps float sums
    order-exact when workers run out of order)."""

    def __init__(self) -> None:
        self.usages: list = []

    def record(self, usage) -> None:
        self.usages.append(usage)


@dataclass(frozen=True)
class DecomposedPrediction:
    """One sample's three-step outcome."""

    sample_uid: str
    truth: Boundedness
    prediction: Boundedness
    steps_completed: int

    @property
    def correct(self) -> bool:
        return self.prediction == self.truth


@dataclass(frozen=True)
class DecomposeResult:
    model_name: str
    predictions: tuple[DecomposedPrediction, ...]
    usage: dict[str, float]

    def metrics(self) -> MetricReport:
        return MetricReport.from_predictions(
            [p.truth for p in self.predictions],
            [p.prediction for p in self.predictions],
        )


def classify_decomposed(
    model: LlmModel, sample: Sample, *, gpu: GpuSpec | None = None,
    meter: UsageMeter | None = None, engine: EvalEngine | None = None,
) -> DecomposedPrediction:
    """Run the full three-step protocol for one sample."""
    gpu = gpu or default_gpu()

    def complete(prompt: str) -> str:
        if engine is not None:
            response = engine.complete(model, prompt)
        else:
            response = model.complete(prompt)
        if meter is not None:
            meter.record(response.usage)
        return response.text

    steps = 0
    try:
        a1 = parse_step1_answer(complete(build_step1_prompt(gpu)))
        steps = 1
        a2 = parse_step2_answer(complete(build_step2_prompt(sample)))
        steps = 2
        final = complete(
            build_step3_prompt(
                sp_ops=a2.sp_ops,
                dp_ops=a2.dp_ops,
                int_ops=a2.int_ops,
                bytes_per_thread=a2.bytes_per_thread,
                sp_peak=a1.sp_peak,
                dp_peak=a1.dp_peak,
                int_peak=a1.int_peak,
                bandwidth=a1.bandwidth,
            )
        )
        steps = 3
        prediction = Boundedness.from_word(final)
    except ValueError:
        prediction = Boundedness.BANDWIDTH  # harness fallback
    return DecomposedPrediction(
        sample_uid=sample.uid,
        truth=sample.label,
        prediction=prediction,
        steps_completed=steps,
    )


def run_decompose_experiment(
    model: LlmModel,
    samples: Sequence[Sample] | None = None,
    *,
    gpu: GpuSpec | None = None,
    engine: EvalEngine | None = None,
) -> DecomposeResult:
    """The full decomposition sweep for one model.

    Samples are independent three-step chains, so they shard across the
    engine's pool; each worker collects its sample's raw ``Usage`` records
    and they are metered afterwards in (sample, step) order — the same
    accumulation order as the sequential loop, so usage totals (including
    float cost sums) are byte-identical at any worker count.
    """
    engine = engine or EvalEngine()
    if samples is None:
        # Cold start builds (and profiles) the dataset here: fan it over
        # the engine's workers instead of a single thread.
        samples = paper_dataset(jobs=engine.jobs).balanced

    def one(sample: Sample) -> tuple[DecomposedPrediction, list]:
        recorder = _UsageRecorder()
        pred = classify_decomposed(
            model, sample, gpu=gpu, meter=recorder, engine=engine
        )
        return pred, recorder.usages

    # Each chain completes through the shared engine (cache reads/writes and
    # stats must stay in this process), so a process-backend engine clamps
    # to threads here; sequential stays sequential.
    backend = "thread" if engine.backend == "process" else engine.backend
    pairs = parallel_map(one, list(samples), jobs=engine.jobs, backend=backend)
    meter = UsageMeter(model.config)
    for _, usages in pairs:
        for usage in usages:
            meter.record(usage)
    return DecomposeResult(
        model_name=model.name,
        predictions=tuple(pred for pred, _ in pairs),
        usage=meter.summary(),
    )
