"""Figure data generation (paper Figures 1 and 2).

Figure 1: the RTX 3080 roofline chart — three op-class rooflines with their
balance points, overlaid with every profiled kernel's (arithmetic intensity,
achieved performance) point per op class.

Figure 2: box-and-whisker token-count distributions of the balanced
dataset's train/validation splits, per language and class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.dataset import PaperDataset, Sample, paper_dataset
from repro.roofline import GpuSpec, default_gpu
from repro.types import Boundedness, Language, OpClass
from repro.util.stats import BoxStats, five_number_summary
from repro.util.textplot import ascii_boxplot, ascii_scatter

#: Kernels whose op-class counts fall below this fraction of their total op
#: mix are not plotted for that class (matching the paper's per-class sample
#: clouds, which only show classes a kernel meaningfully exercises).
_MIN_CLASS_FRACTION = 1e-3


@dataclass(frozen=True)
class RooflineFigure:
    """Figure 1's full data: ceilings, balance points, kernel points."""

    gpu: GpuSpec
    #: op class → list of (AI, achieved Gop/s) kernel points
    points: Mapping[OpClass, tuple[tuple[float, float], ...]]
    #: op class → (balance point AI, peak)
    balance: Mapping[OpClass, tuple[float, float]]

    def bb_fraction(self, op_class: OpClass) -> float:
        """Fraction of this class's samples left of its balance point."""
        pts = self.points[op_class]
        if not pts:
            return 0.0
        bp = self.balance[op_class][0]
        return sum(1 for ai, _ in pts if ai < bp) / len(pts)

    def render_ascii(self, width: int = 78, height: int = 26) -> str:
        rooflines = self.gpu.rooflines()
        all_ai = [ai for pts in self.points.values() for ai, _ in pts]
        ai_lo = max(min(all_ai) * 0.5, 1e-4)
        ai_hi = max(all_ai) * 2.0
        series: dict[str, list[tuple[float, float]]] = {}
        for oc, rl in rooflines:
            series[f"{oc.display} roofline"] = rl.ceiling_points(ai_lo, ai_hi, 160)
        for oc in OpClass:
            series[f"{oc.display} kernels"] = list(self.points[oc])
        return ascii_scatter(
            series,
            width=width,
            height=height,
            x_label="Arithmetic Intensity (op/byte)",
            y_label="Performance (Gop/s)",
            markers="---sdi",
            title=f"{self.gpu.name} roofline — profiled corpus",
        )


def figure1_data(
    samples: Sequence[Sample] | None = None, gpu: GpuSpec | None = None
) -> RooflineFigure:
    """Build Figure 1 from profiled samples (defaults: full corpus)."""
    gpu = gpu or default_gpu()
    if samples is None:
        samples = paper_dataset().profiled
    rooflines = gpu.rooflines()
    points: dict[OpClass, list[tuple[float, float]]] = {oc: [] for oc in OpClass}
    for s in samples:
        c = s.counters
        total_ops = c.sp_flops + c.dp_flops + c.int_ops
        if total_ops <= 0:
            continue
        per_class = {
            OpClass.SP: c.sp_flops,
            OpClass.DP: c.dp_flops,
            OpClass.INT: c.int_ops,
        }
        for oc, ops in per_class.items():
            if ops / total_ops < _MIN_CLASS_FRACTION:
                continue
            ai = ops / c.dram_bytes
            achieved = ops / c.time_s / 1e9
            points[oc].append((ai, achieved))
    balance = {
        oc: (rl.balance_point, rl.peak) for oc, rl in rooflines
    }
    return RooflineFigure(
        gpu=gpu,
        points={oc: tuple(v) for oc, v in points.items()},
        balance=balance,
    )


@dataclass(frozen=True)
class TokenDistributionFigure:
    """Figure 2's data: token-count box stats per split/language/class."""

    groups: Mapping[str, tuple[int, ...]]

    def box_stats(self) -> dict[str, BoxStats]:
        return {name: five_number_summary(v) for name, v in self.groups.items()}

    def render_ascii(self, width: int = 66) -> str:
        return ascii_boxplot(
            {k: list(v) for k, v in self.groups.items()},
            width=width,
            title="Token-count distributions (train/validation x language x class)",
            value_label="tokens",
        )


def figure2_data(dataset: PaperDataset | None = None) -> TokenDistributionFigure:
    """Token-count distributions of the balanced train/val splits."""
    ds = dataset or paper_dataset()
    groups: dict[str, tuple[int, ...]] = {}
    for split_name, split in (("train", ds.train), ("val", ds.validation)):
        for lang in (Language.CUDA, Language.OMP):
            for label in (Boundedness.BANDWIDTH, Boundedness.COMPUTE):
                key = f"{split_name}/{lang.display}/{label.value}"
                groups[key] = tuple(
                    s.token_count
                    for s in split
                    if s.language is lang and s.label is label
                )
    for key, vals in groups.items():
        if not vals:
            raise RuntimeError(f"empty Figure 2 group {key}")
    return TokenDistributionFigure(groups=groups)
