"""Persistent, content-addressed profile store.

The response cache (PR 1) made LLM completions replayable across
processes; this module does the same for the other cold-path cost — the
``ncu``-style per-kernel profiles of :mod:`repro.gpusim.profiler`. Every
profile is addressed by SHA-256 over

* the **program digest** — kernel IR, launch geometry, argv bindings, and
  the program uid (the uid keys the deterministic noise draws, so two
  IR-identical programs with different uids profile differently and must
  never share an entry),
* the **device digest** — every :class:`~repro.roofline.hardware.GpuSpec`
  field plus every :class:`~repro.gpusim.device.DeviceModel` simulation
  parameter, and
* :data:`PROFILER_VERSION`, bumped whenever walker/finalize semantics
  change.

Any IR edit, recalibration, or profiler change therefore invalidates
exactly the affected entries; a stale entry can only ever read as a miss,
never as a wrong profile.

Storage is segment-per-device rather than file-per-entry: one profile
pass reads and writes whole device batches, and a single packed binary
segment (mmap-backed, decoded lazily per entry) turns a warm 6-device
corpus pass into six index parses instead of ~4500 file reads.
Phase-1 traces (:class:`~repro.gpusim.profiler.SymbolicTrace`) persist in
their own device-independent segment, so even a device never profiled
before skips the IR walk.

The segment/eviction/atomic-write machinery lives in the shared
:class:`~repro.store.base.ArtifactStore` base (also under the tokenizer
and render stores of :mod:`repro.store.text`); :class:`ProfileStore` is a
thin subclass, byte-compatible with pre-refactor store directories.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.store.base import ArtifactStore, memoized_object_key, parse_max_bytes
from repro.util.hashing import stable_hash_hex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (profiler imports us)
    from repro.gpusim.device import DeviceModel
    from repro.gpusim.profiler import KernelProfile, SymbolicTrace
    from repro.kernels.program import ProgramSpec

#: Bump whenever the walker, traffic model, jitter, or timing semantics
#: change: the version is hashed into every key, so old entries become
#: unreachable (misses) instead of replaying stale counters.
PROFILER_VERSION = "gpusim-profiler-v1"

#: Environment override for the on-disk profile store location.
PROFILE_CACHE_ENV = "REPRO_PROFILE_CACHE"

#: Environment override for the profile store size bound (bytes).
PROFILE_CACHE_MAX_BYTES_ENV = "REPRO_PROFILE_CACHE_MAX_BYTES"

#: Default on-disk profile store directory (the CLI's default; the library
#: attaches no store unless ``$REPRO_PROFILE_CACHE`` is set).
DEFAULT_PROFILE_CACHE_DIRNAME = ".repro-profile-cache"

_SEGMENT_PREFIX_PROFILES = "profiles-"
_SEGMENT_PREFIX_TRACES = "traces-"


def default_profile_cache_dir() -> Path:
    """Where the CLI keeps its profile store (``$REPRO_PROFILE_CACHE`` wins)."""
    return Path(
        os.environ.get(PROFILE_CACHE_ENV) or DEFAULT_PROFILE_CACHE_DIRNAME
    )


def default_profile_cache_max_bytes() -> int | None:
    """``$REPRO_PROFILE_CACHE_MAX_BYTES`` as an int (``None`` =
    unbounded; ``0`` = keep nothing; junk warns and stays unbounded)."""
    return parse_max_bytes(
        os.environ.get(PROFILE_CACHE_MAX_BYTES_ENV),
        source=PROFILE_CACHE_MAX_BYTES_ENV,
    )


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------

# Digests are memoized per object identity (the corpus and the per-spec
# DeviceModels are long-lived shared instances) via the shared
# weakref-evicting helper in repro.store.base.
_PROGRAM_KEYS: dict[int, tuple] = {}
_DEVICE_KEYS: dict[int, tuple] = {}


def program_profile_key(program: "ProgramSpec") -> str:
    """SHA-256 content address of one program's profiling inputs.

    Covers the first kernel's IR, launch geometry, and binding expressions
    (via the deterministic ``repr`` of the frozen dataclass tree), the
    command line, the program uid (it keys the noise streams), and the
    profiler version.
    """
    return memoized_object_key(program, _PROGRAM_KEYS, _compute_program_key)


def _compute_program_key(program: "ProgramSpec") -> str:
    return stable_hash_hex(
        PROFILER_VERSION,
        program.uid,
        repr(program.first_kernel),
        repr(program.cmdline),
    )


def device_profile_key(device: "DeviceModel") -> str:
    """SHA-256 content address of one device's simulation parameters."""
    return memoized_object_key(device, _DEVICE_KEYS, _compute_device_key)


def _compute_device_key(device: "DeviceModel") -> str:
    spec = device.spec
    spec_parts = [getattr(spec, f.name) for f in dataclasses.fields(spec)]
    model_parts = [
        getattr(device, f.name)
        for f in dataclasses.fields(device)
        if f.name != "spec"
    ]
    return stable_hash_hex(PROFILER_VERSION, spec_parts, model_parts)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProfileStoreManifest:
    """Summary of a profile store's contents (``repro-paper cache``)."""

    version: str
    profile_entries: int
    trace_entries: int
    total_bytes: int
    per_device: tuple[tuple[str, int], ...]  # (device name, entries), sorted
    stale_segments: int = 0  # version-skewed/unreadable; GC'd on next evict

    def render(self) -> str:
        lines = [
            f"profiler:  {self.version}",
            f"profiles:  {self.profile_entries}",
            f"traces:    {self.trace_entries}",
            f"bytes:     {self.total_bytes}",
        ]
        if self.stale_segments:
            lines.append(
                f"stale:     {self.stale_segments} segment"
                f"{'' if self.stale_segments == 1 else 's'} "
                "(reclaimed on next eviction)"
            )
        for name, count in self.per_device:
            lines.append(f"  {name}: {count}")
        return "\n".join(lines)


class ProfileStore(ArtifactStore):
    """Disk-backed profile/trace segments with size-bounded eviction.

    One JSON segment per device (plus one per profiler version for the
    device-independent traces); see :class:`~repro.store.base.ArtifactStore`
    for the write/eviction contract shared with the text-artifact stores.
    """

    version = PROFILER_VERSION
    segment_prefixes = (_SEGMENT_PREFIX_PROFILES, _SEGMENT_PREFIX_TRACES)

    # -- segment naming ------------------------------------------------------
    def _traces_key(self) -> str:
        return stable_hash_hex(PROFILER_VERSION)

    def _profiles_path(self, device_key: str) -> Path:
        return self._segment_path(_SEGMENT_PREFIX_PROFILES, device_key)

    def _traces_path(self) -> Path:
        return self._segment_path(_SEGMENT_PREFIX_TRACES, self._traces_key())

    # -- profiles ------------------------------------------------------------
    def get_profiles(
        self, device: "DeviceModel", program_keys: Sequence[str]
    ) -> dict[str, "KernelProfile"]:
        """program key → profile for every requested key present on disk.

        Lazy: decodes only the requested keys' blobs, not the device's
        whole segment."""
        from repro.gpusim.profiler import KernelProfile

        dkey = device_profile_key(device)
        entries = self._get_entries(
            _SEGMENT_PREFIX_PROFILES, dkey, program_keys, expect_key=dkey
        )
        out: dict[str, KernelProfile] = {}
        for key, raw in entries.items():
            if raw is None:
                continue
            try:
                out[key] = KernelProfile.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue  # corrupt entry == miss; the re-put repairs it
        return out

    def put_profiles(
        self, device: "DeviceModel", profiles: Mapping[str, "KernelProfile"]
    ) -> None:
        """Merge ``program key → profile`` into the device's segment."""
        if not profiles:
            return
        dkey = device_profile_key(device)
        self._merge_entries(
            _SEGMENT_PREFIX_PROFILES,
            dkey,
            {
                "version": PROFILER_VERSION,
                "key": dkey,
                "device": device.spec.name,
            },
            {key: prof.to_dict() for key, prof in profiles.items()},
            expect_key=dkey,
        )

    # -- traces --------------------------------------------------------------
    def get_traces(
        self, program_keys: Sequence[str]
    ) -> dict[str, "SymbolicTrace"]:
        """program key → phase-1 trace for every requested key (lazy)."""
        from repro.gpusim.profiler import SymbolicTrace

        entries = self._get_entries(
            _SEGMENT_PREFIX_TRACES,
            self._traces_key(),
            program_keys,
            expect_key=None,
        )
        out: dict[str, SymbolicTrace] = {}
        for key, raw in entries.items():
            if raw is None:
                continue
            try:
                out[key] = SymbolicTrace.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue
        return out

    def put_traces(self, traces: Mapping[str, "SymbolicTrace"]) -> None:
        if not traces:
            return
        self._merge_entries(
            _SEGMENT_PREFIX_TRACES,
            self._traces_key(),
            {"version": PROFILER_VERSION},
            {key: tr.to_dict() for key, tr in traces.items()},
            expect_key=None,
        )

    # -- lifecycle -----------------------------------------------------------
    def __len__(self) -> int:
        """Total stored profile entries (traces are not counted)."""
        self.flush()
        total = 0
        for path in self._segment_files():
            if not path.name.startswith(_SEGMENT_PREFIX_PROFILES):
                continue
            if path.suffix == ".json" and path.with_suffix(".bin").is_file():
                continue  # legacy twin shadowed by its migrated segment
            total += len(self._read_segment(path, expect_key=None))
        return total

    def manifest(self) -> ProfileStoreManifest:
        """Entry counts, bytes, and per-device breakdown. A missing or
        empty directory reads as an empty manifest, never an error.

        Bytes cover *every* segment file — including corrupt or
        version-skewed ones whose entries are not counted — so the total
        matches what :meth:`size_bytes` and the eviction bound see."""
        profile_entries = 0
        trace_entries = 0
        per_device: dict[str, int] = {}
        for path, data in self.iter_segments():
            entries = data["entries"]
            if path.name.startswith(_SEGMENT_PREFIX_TRACES):
                trace_entries += len(entries)
            else:
                profile_entries += len(entries)
                name = str(data.get("device", "<unknown device>"))
                per_device[name] = per_device.get(name, 0) + len(entries)
        return ProfileStoreManifest(
            version=PROFILER_VERSION,
            profile_entries=profile_entries,
            trace_entries=trace_entries,
            total_bytes=self.size_bytes(),
            per_device=tuple(sorted(per_device.items())),
            stale_segments=self.stale_segment_count(),
        )


# ---------------------------------------------------------------------------
# Process-wide active store
# ---------------------------------------------------------------------------

# The profile pass sits *under* deep call chains (paper_dataset →
# build_samples → profile_corpus), so the store is configured process-wide
# rather than threaded through every signature: the CLI installs one per
# invocation, the library defaults to $REPRO_PROFILE_CACHE, tests inject
# or disable per call via profile_corpus(store=...).
_ACTIVE_LOCK = threading.Lock()
_active_store: ProfileStore | None = None
_active_configured = False


def set_active_profile_store(store: ProfileStore | None) -> None:
    """Install (or, with ``None``, disable) the process-wide store."""
    global _active_store, _active_configured
    with _ACTIVE_LOCK:
        _active_store = store
        _active_configured = True


def reset_active_profile_store() -> None:
    """Forget any installed store; revert to the ``$REPRO_PROFILE_CACHE``
    fallback (used by tests to undo :func:`set_active_profile_store`)."""
    global _active_store, _active_configured
    with _ACTIVE_LOCK:
        _active_store = None
        _active_configured = False


def active_profile_store() -> ProfileStore | None:
    """The process-wide store: whatever :func:`set_active_profile_store`
    installed, else one rooted at ``$REPRO_PROFILE_CACHE`` when set, else
    ``None`` (profiling stays purely in-memory). The env fallback is
    re-read per call, so monkeypatched environments behave."""
    with _ACTIVE_LOCK:
        if _active_configured:
            return _active_store
    path = os.environ.get(PROFILE_CACHE_ENV, "").strip()
    if not path:
        return None
    return ProfileStore(path, max_bytes=default_profile_cache_max_bytes())
