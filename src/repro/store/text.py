"""Persistent, content-addressed text artifacts: tokenizers and renders.

With completions replayed from the response cache and kernel profiles
served by the profile store, a cold ``paper_dataset()`` spends nearly all
of its remaining time *re-deriving deterministic text*: training the BPE
tokenizer and rendering/token-counting every program. Both are pure
functions of versioned inputs, so both persist here:

* :class:`TokenizerStore` keeps learned BPE merge lists, keyed by SHA-256
  over the **training-text digests** (the
  :func:`program_text_key` of every sampled training program — each of
  which already pins the codegen semantics via :data:`TEXT_VERSION`), the
  merge budget, and the tokenizer version. A warm store means a cold
  process trains **zero** tokenizers — and never renders the training
  sample either, because the key derives from the render *inputs*, not
  the rendered bytes.
* :class:`RenderStore` keeps two segment kinds, mirroring the profile
  store's trace/profile split: a tokenizer-independent **sources**
  segment (program text key → concatenated source) and one
  **token-count** segment per tokenizer digest (program text key → token
  count). A 6-device matrix sweep token-counts each program once, and a
  warm store renders and counts **nothing**.

Any codegen, pretokenizer, or trainer change bumps a version hashed into
every key, so stale entries can only read as misses, never as wrong text.
Both stores share one root directory (the **artifact cache**,
``--artifact-cache`` / ``$REPRO_ARTIFACT_CACHE``) and one size bound;
:class:`ArtifactCache` bundles them for configuration plumbing.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.store.base import ArtifactStore, memoized_object_key, parse_max_bytes
from repro.tokenizer.bpe import BPE_VERSION
from repro.util.hashing import stable_hash_hex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.program import ProgramSpec

#: Bump whenever codegen rendering or pretokenization semantics change:
#: hashed into every text key, so old sources/counts/tokenizers become
#: unreachable (misses) instead of replaying stale text.
TEXT_VERSION = "text-artifacts-v1"

#: Environment override for the on-disk artifact cache location.
ARTIFACT_CACHE_ENV = "REPRO_ARTIFACT_CACHE"

#: Environment override for the artifact cache size bound (bytes).
ARTIFACT_CACHE_MAX_BYTES_ENV = "REPRO_ARTIFACT_CACHE_MAX_BYTES"

#: Default on-disk artifact cache directory (the CLI's default; the
#: library attaches no cache unless ``$REPRO_ARTIFACT_CACHE`` is set).
DEFAULT_ARTIFACT_CACHE_DIRNAME = ".repro-artifact-cache"

_SEGMENT_PREFIX_TOKENIZERS = "tokenizers-"
_SEGMENT_PREFIX_SOURCES = "sources-"
_SEGMENT_PREFIX_COUNTS = "tokencounts-"

#: Every text-artifact segment kind. Both stores list the full family so
#: one size bound (and one ``clear``) spans the shared root.
TEXT_SEGMENT_PREFIXES = (
    _SEGMENT_PREFIX_TOKENIZERS,
    _SEGMENT_PREFIX_SOURCES,
    _SEGMENT_PREFIX_COUNTS,
)


def default_artifact_cache_dir() -> Path:
    """Where the CLI keeps its artifact cache (``$REPRO_ARTIFACT_CACHE`` wins)."""
    return Path(
        os.environ.get(ARTIFACT_CACHE_ENV) or DEFAULT_ARTIFACT_CACHE_DIRNAME
    )


def default_artifact_cache_max_bytes() -> int | None:
    """``$REPRO_ARTIFACT_CACHE_MAX_BYTES`` as an int (``None`` =
    unbounded; ``0`` = keep nothing; junk warns and stays unbounded)."""
    return parse_max_bytes(
        os.environ.get(ARTIFACT_CACHE_MAX_BYTES_ENV),
        source=ARTIFACT_CACHE_MAX_BYTES_ENV,
    )


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------

_PROGRAM_TEXT_KEYS: dict[int, tuple] = {}


def program_text_key(program: "ProgramSpec") -> str:
    """SHA-256 content address of one program's *rendering* inputs.

    Covers the full frozen spec tree — every kernel's IR (not just the
    profiled first kernel: auxiliary kernels render too), launch
    geometry, cmdline, verbosity/header/split knobs — via the
    deterministic ``repr``, plus :data:`TEXT_VERSION`. Identity-memoized;
    the corpus programs are long-lived shared instances.
    """
    return memoized_object_key(program, _PROGRAM_TEXT_KEYS, _compute_text_key)


def _compute_text_key(program: "ProgramSpec") -> str:
    return stable_hash_hex(TEXT_VERSION, program.uid, repr(program))


def tokenizer_train_key(
    programs: Sequence["ProgramSpec"], num_merges: int
) -> str:
    """SHA-256 content address of one corpus-tokenizer training run.

    Derives from the training programs' text keys rather than their
    rendered bytes, so a warm :class:`TokenizerStore` lookup needs no
    rendering at all; :data:`BPE_VERSION` rides along so trainer semantic
    changes invalidate stored merges.
    """
    return stable_hash_hex(
        TEXT_VERSION,
        BPE_VERSION,
        int(num_merges),
        [program_text_key(p) for p in programs],
    )


# ---------------------------------------------------------------------------
# The stores
# ---------------------------------------------------------------------------

class TokenizerStore(ArtifactStore):
    """Learned BPE merge lists, one segment for all trained tokenizers.

    Entries are tiny (~900 merge pairs) and every consumer wants the whole
    tokenizer, so a single segment is the natural reuse unit.
    """

    version = TEXT_VERSION
    segment_prefixes = TEXT_SEGMENT_PREFIXES

    def _tokenizers_key(self) -> str:
        return stable_hash_hex(TEXT_VERSION)

    def _tokenizers_path(self) -> Path:
        return self._segment_path(
            _SEGMENT_PREFIX_TOKENIZERS, self._tokenizers_key()
        )

    def get_merges(self, key: str) -> list[tuple[str, str]] | None:
        """The stored merge list under ``key``, or ``None`` on a miss.

        Lazy: decodes only this tokenizer's blob, not the segment."""
        entries = self._get_entries(
            _SEGMENT_PREFIX_TOKENIZERS,
            self._tokenizers_key(),
            [key],
            expect_key=None,
        )
        raw = entries.get(key)
        if not isinstance(raw, list):
            return None
        merges: list[tuple[str, str]] = []
        for pair in raw:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(s, str) for s in pair)
            ):
                return None  # corrupt entry == miss; the re-put repairs it
            merges.append((pair[0], pair[1]))
        return merges

    def put_merges(
        self, key: str, merges: Iterable[tuple[str, str]]
    ) -> None:
        self._merge_entries(
            _SEGMENT_PREFIX_TOKENIZERS,
            self._tokenizers_key(),
            {"version": TEXT_VERSION},
            {key: [list(pair) for pair in merges]},
            expect_key=None,
        )


class RenderStore(ArtifactStore):
    """Rendered program sources + per-tokenizer token counts.

    Sources are tokenizer-independent (one segment, like the profile
    store's device-independent traces); token counts hang off a tokenizer
    digest (one segment per tokenizer, like per-device profiles).
    """

    version = TEXT_VERSION
    segment_prefixes = TEXT_SEGMENT_PREFIXES

    def _sources_key(self) -> str:
        return stable_hash_hex(TEXT_VERSION)

    def _sources_path(self) -> Path:
        return self._segment_path(_SEGMENT_PREFIX_SOURCES, self._sources_key())

    def _counts_path(self, tokenizer_digest: str) -> Path:
        return self._segment_path(_SEGMENT_PREFIX_COUNTS, tokenizer_digest)

    # -- sources -------------------------------------------------------------
    def get_sources(self, text_keys: Sequence[str]) -> dict[str, str]:
        """text key → concatenated source for every requested key on disk.

        Lazy: only the requested programs' source blobs decode."""
        entries = self._get_entries(
            _SEGMENT_PREFIX_SOURCES,
            self._sources_key(),
            text_keys,
            expect_key=None,
        )
        return {
            key: value
            for key, value in entries.items()
            if isinstance(value, str)
        }

    def put_sources(self, sources: Mapping[str, str]) -> None:
        self._merge_entries(
            _SEGMENT_PREFIX_SOURCES,
            self._sources_key(),
            {"version": TEXT_VERSION},
            dict(sources),
            expect_key=None,
        )

    # -- token counts --------------------------------------------------------
    def get_token_counts(
        self, tokenizer_digest: str, text_keys: Sequence[str]
    ) -> dict[str, int]:
        """text key → token count under one tokenizer digest (lazy)."""
        entries = self._get_entries(
            _SEGMENT_PREFIX_COUNTS,
            tokenizer_digest,
            text_keys,
            expect_key=tokenizer_digest,
        )
        out: dict[str, int] = {}
        for key, raw in entries.items():
            if isinstance(raw, int) and not isinstance(raw, bool):
                out[key] = raw
        return out

    def put_token_counts(
        self, tokenizer_digest: str, counts: Mapping[str, int]
    ) -> None:
        self._merge_entries(
            _SEGMENT_PREFIX_COUNTS,
            tokenizer_digest,
            {"version": TEXT_VERSION, "key": tokenizer_digest},
            dict(counts),
            expect_key=tokenizer_digest,
        )


# ---------------------------------------------------------------------------
# The bundled cache + manifest
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArtifactCacheManifest:
    """Summary of an artifact cache's contents (``repro-paper cache``)."""

    version: str
    tokenizer_entries: int
    source_entries: int
    count_entries: int
    count_tokenizers: int  # distinct tokenizer digests with count segments
    total_bytes: int
    stale_segments: int = 0  # version-skewed/unreadable; GC'd on next evict

    def render(self) -> str:
        lines = [
            f"artifacts:  {self.version}",
            f"tokenizers: {self.tokenizer_entries}",
            f"sources:    {self.source_entries}",
            f"counts:     {self.count_entries} "
            f"({self.count_tokenizers} tokenizer"
            f"{'' if self.count_tokenizers == 1 else 's'})",
            f"bytes:      {self.total_bytes}",
        ]
        if self.stale_segments:
            lines.append(
                f"stale:      {self.stale_segments} segment"
                f"{'' if self.stale_segments == 1 else 's'} "
                "(reclaimed on next eviction)"
            )
        return "\n".join(lines)


class ArtifactCache:
    """Both text stores over one root directory and one size bound.

    The two stores share segment-family prefixes, so either one's
    ``evict``/``clear`` covers the whole cache; this wrapper is the unit
    the CLI and the process-wide plumbing configure.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        self.root = Path(root)
        # Same bound semantics as ArtifactStore: None unbounded, 0 keeps
        # nothing, negatives rejected (the member store raises).
        self.tokenizers = TokenizerStore(root, max_bytes=max_bytes)
        self.renders = RenderStore(root, max_bytes=max_bytes)
        self.max_bytes = self.renders.max_bytes

    def size_bytes(self) -> int:
        self.tokenizers.flush()
        return self.renders.size_bytes()

    def flush(self) -> None:
        self.tokenizers.flush()
        self.renders.flush()

    @contextmanager
    def deferred(self):
        """Batch puts on both member stores (see
        :meth:`~repro.store.base.ArtifactStore.deferred`)."""
        with self.tokenizers.deferred(), self.renders.deferred():
            yield self

    def evict(self, max_bytes: int | None = None) -> int:
        self.tokenizers.flush()
        return self.renders.evict(max_bytes)

    def clear(self) -> None:
        self.tokenizers.clear()
        self.renders.clear()

    def manifest(self) -> ArtifactCacheManifest:
        """Entry counts and bytes. A missing or empty directory reads as
        an empty manifest, never an error.

        Bytes cover *every* segment file — including corrupt or
        version-skewed ones whose entries are not counted — so the total
        matches what :meth:`size_bytes` and the eviction bound see."""
        tokenizer_entries = source_entries = count_entries = 0
        count_tokenizers = 0
        for path, data in self.renders.iter_segments():
            n = len(data["entries"])
            if path.name.startswith(_SEGMENT_PREFIX_TOKENIZERS):
                tokenizer_entries += n
            elif path.name.startswith(_SEGMENT_PREFIX_SOURCES):
                source_entries += n
            else:
                count_entries += n
                count_tokenizers += 1
        return ArtifactCacheManifest(
            version=TEXT_VERSION,
            tokenizer_entries=tokenizer_entries,
            source_entries=source_entries,
            count_entries=count_entries,
            count_tokenizers=count_tokenizers,
            total_bytes=self.size_bytes(),
            stale_segments=self.renders.stale_segment_count(),
        )


# ---------------------------------------------------------------------------
# Process-wide active cache
# ---------------------------------------------------------------------------

# Text preparation sits under deep call chains (paper_dataset →
# build_samples → program_texts; corpus_tokenizer → train), so the cache
# is configured process-wide rather than threaded through every
# signature: the CLI installs one per invocation, the library defaults to
# $REPRO_ARTIFACT_CACHE, tests inject or disable per call via
# program_texts(cache=...).
_ACTIVE_LOCK = threading.Lock()
_active_cache: ArtifactCache | None = None
_active_configured = False


def set_active_artifact_cache(cache: ArtifactCache | None) -> None:
    """Install (or, with ``None``, disable) the process-wide cache."""
    global _active_cache, _active_configured
    with _ACTIVE_LOCK:
        _active_cache = cache
        _active_configured = True


def reset_active_artifact_cache() -> None:
    """Forget any installed cache; revert to the ``$REPRO_ARTIFACT_CACHE``
    fallback (used by tests to undo :func:`set_active_artifact_cache`)."""
    global _active_cache, _active_configured
    with _ACTIVE_LOCK:
        _active_cache = None
        _active_configured = False


def active_artifact_cache() -> ArtifactCache | None:
    """The process-wide cache: whatever :func:`set_active_artifact_cache`
    installed, else one rooted at ``$REPRO_ARTIFACT_CACHE`` when set, else
    ``None`` (text preparation stays purely in-memory). The env fallback
    is re-read per call, so monkeypatched environments behave."""
    with _ACTIVE_LOCK:
        if _active_configured:
            return _active_cache
    path = os.environ.get(ARTIFACT_CACHE_ENV, "").strip()
    if not path:
        return None
    return ArtifactCache(path, max_bytes=default_artifact_cache_max_bytes())
