"""Decoder sampling layer: temperature / top_p over a binary response.

The emulated decision produces a logit for the two response words. At the
paper's settings (temperature 0.1, top_p 0.2) the distribution is so peaked
that sampling never flips the argmax — which is precisely why the paper's
chi-squared test (§3.2) found no statistically significant effect of the
sampling hyperparameters. Higher temperatures can flip genuinely borderline
decisions, but those are rare, so the contingency tables stay homogeneous.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.types import Boundedness
from repro.util.rng import RngStream

#: The paper's chosen settings (§3.2).
DEFAULT_TEMPERATURE = 0.1
DEFAULT_TOP_P = 0.2

#: Scale from abstract decision logit to the response-token logit gap. The
#: gap is large for any non-borderline decision, mimicking a model that is
#: confident in its one-word answer even when that answer is wrong.
_LOGIT_GAP_SCALE = 14.0


@dataclass(frozen=True)
class SamplingParams:
    temperature: float = DEFAULT_TEMPERATURE
    top_p: float = DEFAULT_TOP_P

    def __post_init__(self) -> None:
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")
        if not (0.0 < self.top_p <= 1.0):
            raise ValueError("top_p must be in (0, 1]")


def sample_response(
    decision_logit: float,
    params: SamplingParams,
    rng: RngStream,
) -> Boundedness:
    """Sample the response word from the softmax over the two candidates.

    ``decision_logit`` positive favours Compute. Temperature rescales the
    gap; top_p truncates the candidate set (at the paper's 0.2, the weaker
    word survives only when the two are nearly tied).
    """
    gap = decision_logit * _LOGIT_GAP_SCALE
    if params.temperature <= 1e-6:
        return Boundedness.COMPUTE if gap >= 0 else Boundedness.BANDWIDTH
    p_compute = 1.0 / (1.0 + math.exp(-gap / params.temperature))
    # top_p nucleus: drop the minority word unless it clears the nucleus.
    minority = min(p_compute, 1.0 - p_compute)
    if minority < (1.0 - params.top_p):
        return Boundedness.COMPUTE if p_compute >= 0.5 else Boundedness.BANDWIDTH
    return Boundedness.COMPUTE if rng.uniform() < p_compute else Boundedness.BANDWIDTH
