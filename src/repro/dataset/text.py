"""Batched, memoized, store-backed text preparation (render + token count).

Rendered source and its token count are **device-independent**: the same
program renders to the same bytes whichever GPU the scenario profiles, so
a 6-device matrix sweep must pay the render/tokenize cost once, not six
times. This module is that shared pass, layered like
:func:`repro.gpusim.profile_programs`:

* an in-process memo keyed by *object identity* (weakref-evicted, so a
  dead corpus frees its text and id reuse cannot alias) — the corpus and
  scenario passes share one render per program object, and the memo
  costs no digest work at all;
* under it, the persistent render store
  (:class:`repro.store.text.RenderStore`), addressed by the SHA-256
  content digests of :func:`repro.store.text.program_text_key` and the
  tokenizer digest — digests are computed only when a store is attached,
  a warm artifact cache means a cold process renders and token-counts
  **zero** programs, and a stale entry can only read as a miss;
* misses fan out over ``jobs`` worker threads and write back through
  both layers.

Sources and counts round-trip JSON byte-exactly, so samples, prune
decisions, and report digests are identical with and without the cache.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.kernels.codegen import render_program
from repro.store.text import active_artifact_cache, program_text_key
from repro.util.parallel import parallel_map

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.program import ProgramSpec
    from repro.tokenizer.bpe import BpeTokenizer


@dataclass(frozen=True)
class TextArtifact:
    """One program's device-independent text: source and its token count."""

    source: str
    token_count: int


# Identity-keyed memos (value caches, same weakref discipline as
# repro.store.base.memoized_object_key): _SOURCE_MEMO maps id(program) →
# source, _COUNT_MEMO maps (tokenizer digest, id(program)) → count. The
# tokenizer digest (one memoized hash over the merge list) rides in the
# count key because one process can hold several trained tokenizers.
_TEXT_LOCK = threading.Lock()
_SOURCE_MEMO: dict[int, tuple["weakref.ref", str]] = {}
_COUNT_MEMO: dict[tuple[str, int], tuple["weakref.ref", int]] = {}

#: Sentinel: "use the process-wide active artifact cache" (see
#: :func:`repro.store.text.active_artifact_cache`). Pass ``cache=None``
#: to force store-less rendering.
_ACTIVE_CACHE = object()


def clear_text_memos() -> None:
    """Drop every in-process text memo (tests and benchmarks only)."""
    with _TEXT_LOCK:
        _SOURCE_MEMO.clear()
        _COUNT_MEMO.clear()


def _memo_get(memo: dict, key, obj: object):
    hit = memo.get(key)
    if hit is not None and hit[0]() is obj:
        return hit[1]
    return None


def _memo_install(memo: dict, entries: dict) -> None:
    """``entries`` maps memo key → (anchor object, value)."""

    def _evict(_ref, *, key, memo=memo, lock=_TEXT_LOCK) -> None:
        # The lock rides in as a default arg: at interpreter shutdown
        # module globals are torn down before late weakref callbacks fire.
        with lock:
            memo.pop(key, None)

    with _TEXT_LOCK:
        for key, (obj, value) in entries.items():
            memo[key] = (
                weakref.ref(obj, lambda r, key=key: _evict(r, key=key)),
                value,
            )


def rendered_sources(
    programs: Sequence["ProgramSpec"],
    *,
    jobs: int = 1,
    cache=_ACTIVE_CACHE,
) -> dict[str, str]:
    """uid → concatenated source, rendering each program at most once.

    Layered memo → render store → :func:`render_program`; newly rendered
    sources are written back through both layers.
    """
    if cache is _ACTIVE_CACHE:
        cache = active_artifact_cache()
    programs = list(programs)
    sources: dict[int, str] = {}
    missing: list[tuple[int, "ProgramSpec"]] = []
    with _TEXT_LOCK:
        for i, program in enumerate(programs):
            hit = _memo_get(_SOURCE_MEMO, id(program), program)
            if hit is not None:
                sources[i] = hit
            else:
                missing.append((i, program))
    if cache is not None and missing:
        keys = [program_text_key(p) for _, p in missing]
        stored = cache.renders.get_sources(keys)
        if stored:
            rest = []
            for (i, program), key in zip(missing, keys):
                if key in stored:
                    sources[i] = stored[key]
                else:
                    rest.append((i, program))
            _memo_install(
                _SOURCE_MEMO,
                {
                    id(p): (p, stored[k])
                    for (_, p), k in zip(missing, keys)
                    if k in stored
                },
            )
            missing = rest
    if missing:
        rendered = parallel_map(
            lambda item: render_program(item[1]).concatenated_source(),
            missing,
            jobs=jobs,
        )
        for (i, _), text in zip(missing, rendered):
            sources[i] = text
        _memo_install(
            _SOURCE_MEMO,
            {
                id(p): (p, text)
                for (_, p), text in zip(missing, rendered)
            },
        )
        if cache is not None:
            cache.renders.put_sources(
                {
                    program_text_key(p): text
                    for (_, p), text in zip(missing, rendered)
                }
            )
    return {p.uid: sources[i] for i, p in enumerate(programs)}


def program_texts(
    programs: Sequence["ProgramSpec"],
    tokenizer: "BpeTokenizer",
    *,
    jobs: int = 1,
    cache=_ACTIVE_CACHE,
) -> dict[str, TextArtifact]:
    """uid → :class:`TextArtifact` for one batch of programs.

    The device-independent half of :func:`repro.dataset.build.build_sample`,
    hoisted out of the per-device loop: every scenario GPU of a matrix
    sweep shares one render and one token count per program.
    """
    if cache is _ACTIVE_CACHE:
        cache = active_artifact_cache()
    programs = list(programs)
    tdigest = tokenizer.digest()
    sources = rendered_sources(programs, jobs=jobs, cache=cache)

    counts: dict[int, int] = {}
    missing: list[tuple[int, "ProgramSpec"]] = []
    with _TEXT_LOCK:
        for i, program in enumerate(programs):
            hit = _memo_get(_COUNT_MEMO, (tdigest, id(program)), program)
            if hit is not None:
                counts[i] = hit
            else:
                missing.append((i, program))
    if cache is not None and missing:
        keys = [program_text_key(p) for _, p in missing]
        stored = cache.renders.get_token_counts(tdigest, keys)
        if stored:
            rest = []
            for (i, program), key in zip(missing, keys):
                if key in stored:
                    counts[i] = stored[key]
                else:
                    rest.append((i, program))
            _memo_install(
                _COUNT_MEMO,
                {
                    (tdigest, id(p)): (p, stored[k])
                    for (_, p), k in zip(missing, keys)
                    if k in stored
                },
            )
            missing = rest
    if missing:
        counted = parallel_map(
            lambda item: tokenizer.count_tokens(sources[item[1].uid]),
            missing,
            jobs=jobs,
        )
        for (i, _), count in zip(missing, counted):
            counts[i] = count
        _memo_install(
            _COUNT_MEMO,
            {
                (tdigest, id(p)): (p, count)
                for (_, p), count in zip(missing, counted)
            },
        )
        if cache is not None:
            cache.renders.put_token_counts(
                tdigest,
                {
                    program_text_key(p): count
                    for (_, p), count in zip(missing, counted)
                },
            )
    return {
        p.uid: TextArtifact(source=sources[p.uid], token_count=counts[i])
        for i, p in enumerate(programs)
    }
