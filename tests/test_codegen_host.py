"""Structural tests for generated host code, across verbosity and bloat
levels, for both backends."""

import dataclasses
import re

import pytest

from repro.kernels.codegen import render_cuda, render_omp
from repro.kernels.codegen.cuda import _unique_arrays
from repro.kernels.codegen.utilheader import render_util_header
from repro.kernels.families import get_family
from repro.types import Language


def _spec(family="saxpy", variant=0, language=Language.CUDA, **overrides):
    spec = get_family(family).build(variant, language)
    return dataclasses.replace(spec, **overrides) if overrides else spec


class TestCudaHost:
    def test_malloc_free_pairing(self):
        spec = _spec()
        src = render_cuda(spec).concatenated_source()
        arrays = _unique_arrays(spec)
        assert len(arrays) >= 2
        for arr in arrays:
            assert f"h_{arr.name} = " in src
            assert f"free(h_{arr.name});" in src
            assert f"cudaFree(d_{arr.name});" in src

    def test_every_flag_parsed(self):
        spec = _spec("stencil3d7", 0)
        src = render_cuda(spec).concatenated_source()
        for name, default in spec.cmdline.flags:
            assert f'strcmp(argv[i], "--{name}")' in src
            assert f"int {name} = {default};" in src

    def test_verbosity_zero_minimal(self):
        spec = _spec(host_verbosity=0)
        src = render_cuda(spec).concatenated_source()
        assert "usage(" not in src
        assert "CUDA_CHECK" not in src

    def test_verbosity_two_has_reference(self):
        spec = _spec(host_verbosity=2)
        src = render_cuda(spec).concatenated_source()
        assert "reference_norm" in src
        assert "PASSED" in src

    def test_util2_harness_uses_shared_helpers(self):
        spec = _spec(util_header=2, host_verbosity=2)
        src = render_cuda(spec).concatenated_source()
        assert "struct BenchOptions opts;" in src
        assert "stats_print(&stats" in src
        assert "GpuTimer timer;" in src

    def test_checksum_on_first_output(self):
        spec = _spec()
        src = render_cuda(spec).concatenated_source()
        assert "double checksum = 0.0;" in src
        assert 'printf("checksum: %.6e\\n", checksum);' in src

    def test_scalar_literals_typed(self):
        # saxpy passes alpha as a float literal
        spec = _spec()
        src = render_cuda(spec).concatenated_source()
        assert re.search(r"saxpy_kernel<<<.*>>>\(d_x, d_y, 2\.0f, n\);", src)


class TestOmpHost:
    def test_map_clause_per_array(self):
        spec = _spec(language=Language.OMP)
        src = render_omp(spec).concatenated_source()
        for arr in _unique_arrays(spec):
            clause = "tofrom" if arr.is_output else "to"
            size = arr.size if isinstance(arr.size, str) else str(arr.size)
            assert f"map({clause}: {arr.name}[0:{size}])" in src

    def test_wtime_timing(self):
        src = render_omp(_spec(language=Language.OMP)).concatenated_source()
        assert "omp_get_wtime()" in src

    def test_util2_harness(self):
        spec = _spec(language=Language.OMP, util_header=2, host_verbosity=2)
        src = render_omp(spec).concatenated_source()
        assert "WallTimer timer;" in src
        assert "stats_print(&stats" in src

    def test_free_per_array(self):
        spec = _spec(language=Language.OMP)
        src = render_omp(spec).concatenated_source()
        for arr in _unique_arrays(spec):
            assert f"free({arr.name});" in src


class TestUtilHeader:
    @pytest.mark.parametrize("language", [Language.CUDA, Language.OMP])
    def test_level1_has_timer_and_init(self, language):
        text = render_util_header(1, language, "prog")
        assert "fill_linear_f32" in text
        if language is Language.CUDA:
            assert "GpuTimer" in text
        else:
            assert "WallTimer" in text

    @pytest.mark.parametrize("language", [Language.CUDA, Language.OMP])
    def test_level2_has_full_suite(self, language):
        text = render_util_header(2, language, "prog")
        for marker in ("compare_with_tolerance", "parse_common_flag",
                       "stats_print", "dump_array_f32", "alloc_aligned",
                       "select_device", "variance_f32"):
            assert marker in text, marker

    def test_level2_longer_than_level1(self):
        l1 = render_util_header(1, Language.CUDA, "p")
        l2 = render_util_header(2, Language.CUDA, "p")
        assert len(l2) > 2 * len(l1)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            render_util_header(0, Language.CUDA, "p")

    def test_include_guard(self):
        text = render_util_header(1, Language.OMP, "p")
        assert text.count("BENCHMARK_UTILS_H") == 3  # ifndef/define/endif


class TestReferenceImpl:
    def test_reference_for_simple_kernel(self):
        from repro.kernels.codegen.reference import render_reference_file

        spec = _spec(util_header=2)
        f = render_reference_file(spec)
        assert f.filename == "reference_impl.h"
        assert f"{spec.first_kernel.kernel.name}_cpu(" in f.text
        assert "validate_" in f.text

    def test_reference_skips_shared_memory_kernels(self):
        from repro.kernels.codegen.reference import render_reference_file

        spec = get_family("gemm_tiled").build(0, Language.CUDA)
        f = render_reference_file(spec)
        assert "no direct sequential transliteration" in f.text
        assert "_cpu(" not in f.text

    def test_reference_2d_kernel_nested_loops(self):
        from repro.kernels.codegen.reference import render_reference_kernel

        spec = get_family("gemm_naive").build(0, Language.CUDA)
        text = render_reference_kernel(spec.first_kernel.kernel)
        assert text.count("for (int g") == 2  # gy and gx loops
