"""Kernel-level BB/CB classification (paper §2.1).

The paper's labeling rule: compute each op class's arithmetic intensity
(ops of that class / total DRAM bytes) and classify it against that class's
roofline. *"If a kernel is BB in all 3 arithmetic operations, we consider it
BB for classification; otherwise if there exists at least 1 operation type
where the kernel is CB, we consider it CB."*

Op classes the kernel never executes contribute an AI of zero, which is
always bandwidth-bound, so the rule reduces to: CB iff some op class the
kernel actually performs is compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.roofline.model import RooflineSet
from repro.types import Boundedness, OpClass


@dataclass(frozen=True)
class IntensityProfile:
    """Per-op-class dynamic totals of one kernel invocation.

    ``ops`` maps op class to total operation count; ``dram_bytes`` is the
    total DRAM traffic (reads + writes) of the invocation.
    """

    ops: Mapping[OpClass, float]
    dram_bytes: float

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0:
            raise ValueError("a profiled kernel must move a positive number of bytes")
        for oc, count in self.ops.items():
            if count < 0:
                raise ValueError(f"negative op count for {oc}: {count}")

    def intensity(self, op_class: OpClass) -> float:
        """Arithmetic intensity (op/byte) of one op class."""
        return float(self.ops.get(op_class, 0.0)) / self.dram_bytes

    def intensities(self) -> dict[OpClass, float]:
        return {oc: self.intensity(oc) for oc in OpClass}

    @property
    def total_ops(self) -> float:
        return float(sum(self.ops.values()))

    @property
    def dominant_class(self) -> OpClass:
        """Op class with the highest dynamic count (ties: SP > DP > INT)."""
        order = [OpClass.SP, OpClass.DP, OpClass.INT]
        return max(order, key=lambda oc: (self.ops.get(oc, 0.0), -order.index(oc)))


@dataclass(frozen=True)
class ClassificationDetail:
    """Full per-class breakdown behind a kernel label (used in reports)."""

    per_class: Mapping[OpClass, Boundedness]
    intensities: Mapping[OpClass, float]
    label: Boundedness


def classify_kernel(profile: IntensityProfile, rooflines: RooflineSet) -> ClassificationDetail:
    """Apply the paper's kernel-level labeling rule.

    A class with zero executed ops has AI 0 and is trivially BB; only classes
    the kernel actually performs can flip the label to CB.
    """
    per_class: dict[OpClass, Boundedness] = {}
    intensities: dict[OpClass, float] = {}
    label = Boundedness.BANDWIDTH
    for op_class in OpClass:
        ai = profile.intensity(op_class)
        intensities[op_class] = ai
        verdict = rooflines[op_class].classify(ai)
        per_class[op_class] = verdict
        if verdict is Boundedness.COMPUTE:
            label = Boundedness.COMPUTE
    return ClassificationDetail(per_class=per_class, intensities=intensities, label=label)


def classify_ai(ai: float, *, peak: float, bandwidth: float) -> Boundedness:
    """One-roofline classification used by RQ1 (explicit AI given).

    This is the exact question posed to the LLMs in Figure 3: balance point
    ``peak / bandwidth``; AI strictly below it is bandwidth-bound.
    """
    from repro.roofline.model import Roofline

    return Roofline(peak=peak, bandwidth=bandwidth).classify(ai)
