"""Byte-level BPE tokenizer (trainable).

The paper uses the gpt-4o-mini tokenizer to enforce its 8e3-token prompt
cutoff and to draw Figure 2's token-count distributions. Offline, we train
our own byte-level BPE on the generated corpus: what matters downstream is a
consistent subword token count with code-like statistics (≈3-4 characters
per token on C sources), which BPE delivers by construction.

Implementation follows the classic algorithm: pre-tokenize into words with a
GPT-style regex, then repeatedly merge the most frequent adjacent symbol
pair. Training is deterministic (ties broken lexicographically).
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

#: GPT-style pre-tokenization: identifiers (with one leading space), numbers,
#: punctuation runs, whitespace runs.
_PRETOKEN_RE = re.compile(
    r" ?[A-Za-z_]+|[0-9]+|[^\sA-Za-z_0-9]+| +|\n+|\t+"
)


def pretokenize(text: str) -> list[str]:
    """Split text into BPE word units."""
    return _PRETOKEN_RE.findall(text)


def _word_to_symbols(word: str) -> tuple[str, ...]:
    return tuple(word)


@dataclass
class BpeTokenizer:
    """A trained byte-level BPE tokenizer.

    ``merges`` is an ordered list of symbol pairs; rank order defines merge
    priority during encoding (lower rank merges first), exactly as in the
    original BPE formulation.
    """

    merges: list[tuple[str, str]] = field(default_factory=list)
    _ranks: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)
    _vocab: dict[str, int] = field(default_factory=dict, repr=False)
    _cache: dict[str, tuple[str, ...]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        self._ranks = {pair: i for i, pair in enumerate(self.merges)}
        symbols: dict[str, int] = {}
        for ch in map(chr, range(256)):
            symbols.setdefault(ch, len(symbols))
        for a, b in self.merges:
            symbols.setdefault(a + b, len(symbols))
        self._vocab = symbols
        self._cache = {}

    # -- training ------------------------------------------------------------
    @classmethod
    def train(
        cls, corpus: Iterable[str], *, num_merges: int = 3000, min_pair_count: int = 2
    ) -> "BpeTokenizer":
        """Learn ``num_merges`` merge rules from the corpus texts."""
        if num_merges < 0:
            raise ValueError("num_merges must be non-negative")
        word_freq: Counter[tuple[str, ...]] = Counter()
        for text in corpus:
            for word in pretokenize(text):
                word_freq[_word_to_symbols(word)] += 1

        merges: list[tuple[str, str]] = []
        words = dict(word_freq)
        for _ in range(num_merges):
            pair_counts: Counter[tuple[str, str]] = Counter()
            for word, freq in words.items():
                for i in range(len(word) - 1):
                    pair_counts[(word[i], word[i + 1])] += freq
            if not pair_counts:
                break
            # Deterministic: max count, ties broken lexicographically.
            best_pair, best_count = max(
                pair_counts.items(), key=lambda kv: (kv[1], kv[0])
            )
            if best_count < min_pair_count:
                break
            merges.append(best_pair)
            merged = best_pair[0] + best_pair[1]
            new_words: dict[tuple[str, ...], int] = {}
            for word, freq in words.items():
                out: list[str] = []
                i = 0
                while i < len(word):
                    if (
                        i < len(word) - 1
                        and word[i] == best_pair[0]
                        and word[i + 1] == best_pair[1]
                    ):
                        out.append(merged)
                        i += 2
                    else:
                        out.append(word[i])
                        i += 1
                key = tuple(out)
                new_words[key] = new_words.get(key, 0) + freq
            words = new_words
        return cls(merges=merges)

    # -- encoding ------------------------------------------------------------
    def _encode_word(self, word: str) -> tuple[str, ...]:
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        symbols = list(_word_to_symbols(word))
        if len(symbols) > 1:
            while True:
                best_rank = None
                best_i = -1
                for i in range(len(symbols) - 1):
                    rank = self._ranks.get((symbols[i], symbols[i + 1]))
                    if rank is not None and (best_rank is None or rank < best_rank):
                        best_rank = rank
                        best_i = i
                if best_rank is None:
                    break
                symbols[best_i : best_i + 2] = [symbols[best_i] + symbols[best_i + 1]]
        result = tuple(symbols)
        if len(self._cache) < 200_000:
            self._cache[word] = result
        return result

    def encode(self, text: str) -> list[int]:
        """Encode text into token ids."""
        ids: list[int] = []
        for word in pretokenize(text):
            for sym in self._encode_word(word):
                ids.append(self._vocab[sym])
        return ids

    def tokenize(self, text: str) -> list[str]:
        """Encode text into token strings (for inspection)."""
        out: list[str] = []
        for word in pretokenize(text):
            out.extend(self._encode_word(word))
        return out

    def count_tokens(self, text: str) -> int:
        """Token count without materializing ids (the pruning hot path)."""
        total = 0
        for word in pretokenize(text):
            total += len(self._encode_word(word))
        return total

    def decode(self, ids: list[int]) -> str:
        rev = {i: s for s, i in self._vocab.items()}
        try:
            return "".join(rev[i] for i in ids)
        except KeyError as e:
            raise ValueError(f"unknown token id {e.args[0]}") from None

    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    # -- persistence -----------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"merges": [list(p) for p in self.merges]})

    @classmethod
    def from_json(cls, payload: str) -> "BpeTokenizer":
        data = json.loads(payload)
        return cls(merges=[tuple(p) for p in data["merges"]])
