"""OpenMP target-offload source generation.

Renders a :class:`~repro.kernels.program.ProgramSpec` into C++-with-OpenMP
source in HeCBench style: kernels as host functions containing a
``#pragma omp target teams distribute parallel for`` loop, with an enclosing
``target data`` region in ``main`` handling the device mapping.

OpenMP offload variants do not use block-local shared memory or barriers;
families provide OMP-compatible IR (the paper's OMP ports likewise differ
structurally from their CUDA siblings).
"""

from __future__ import annotations

from repro.kernels.codegen.common import BackendHooks, render_stmts
from repro.kernels.ir import ArrayDecl, DType, Kernel, Scope
from repro.kernels.launch import KernelInstance
from repro.kernels.program import ProgramSpec, RenderedProgram, SourceFile
from repro.types import Language


def _rsqrt(args: str, dtype: DType) -> str:
    one = "1.0f" if dtype is DType.F32 else "1.0"
    fn = "sqrtf" if dtype is DType.F32 else "sqrt"
    return f"({one} / {fn}({args}))"


def _atomic_add(target: str, value: str, dtype: DType) -> list[str]:
    return ["#pragma omp atomic update", f"{target} += {value};"]


def _sync() -> list[str]:
    raise NotImplementedError(
        "block barriers are not representable in 'distribute parallel for' "
        "OpenMP offload kernels; provide barrier-free IR for OMP variants"
    )


def _unroll(n: int) -> str:
    return f"#pragma unroll({n})"


OMP_HOOKS = BackendHooks(
    rsqrt_spelling=_rsqrt,
    atomic_add=_atomic_add,
    sync_threads=_sync,
    unroll_pragma=_unroll,
)


def _param_decl(arr: ArrayDecl) -> str:
    qual = "" if arr.is_output else "const "
    return f"{qual}{arr.dtype.c_name} *{arr.name}"


def render_kernel(kernel: Kernel, block_hint: int) -> str:
    """Render one offload kernel function."""
    if kernel.shared_arrays():
        raise ValueError(
            f"kernel {kernel.name}: shared-memory arrays are not supported by "
            "the OpenMP backend; supply an OMP-compatible kernel"
        )
    params = [_param_decl(a) for a in kernel.global_arrays()]
    params += [f"{p.dtype.c_name} {p.name}" for p in kernel.params]
    lines = [f"void {kernel.name}({', '.join(params)})", "{"]
    nx = kernel.work_items if isinstance(kernel.work_items, str) else str(kernel.work_items)
    if kernel.work_items_y is None:
        lines.append(
            f"  #pragma omp target teams distribute parallel for "
            f"thread_limit({block_hint})"
        )
        lines.append(f"  for (int gx = 0; gx < {nx}; gx++) {{")
        lines.extend(render_stmts(kernel.body, OMP_HOOKS, 2))
        lines.append("  }")
    else:
        ny = (
            kernel.work_items_y
            if isinstance(kernel.work_items_y, str)
            else str(kernel.work_items_y)
        )
        lines.append(
            f"  #pragma omp target teams distribute parallel for collapse(2) "
            f"thread_limit({block_hint})"
        )
        lines.append(f"  for (int gy = 0; gy < {ny}; gy++) {{")
        lines.append(f"    for (int gx = 0; gx < {nx}; gx++) {{")
        lines.extend(render_stmts(kernel.body, OMP_HOOKS, 3))
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _size_expr(arr: ArrayDecl) -> str:
    return arr.size if isinstance(arr.size, str) else str(arr.size)


def _init_expr(arr: ArrayDecl, salt: int) -> str:
    if arr.dtype.is_float:
        suffix = "f" if arr.dtype is DType.F32 else ""
        return f"({arr.dtype.c_name})((i % {97 + salt}) + 1) * 0.01{suffix}"
    return f"(i * {13 + salt} + 7) % 1024"


def _scalar_arg(value: int, dtype: DType) -> str:
    if dtype is DType.F32:
        return f"{value}.0f"
    if dtype is DType.F64:
        return f"{value}.0"
    return str(value)


def _host_scalar_args(inst: KernelInstance) -> list[str]:
    args = []
    env = dict(inst.binding_exprs)
    for p in inst.kernel.params:
        src = env[p.name]
        if isinstance(src, int):
            args.append(_scalar_arg(src, p.dtype))
        else:
            args.append(src if p.dtype is DType.I32 else f"({p.dtype.c_name}){src}")
    return args


def _unique_arrays(spec: ProgramSpec) -> list[ArrayDecl]:
    seen: dict[str, ArrayDecl] = {}
    for inst in spec.kernels:
        for arr in inst.kernel.arrays:
            if arr.scope is not Scope.GLOBAL:
                continue
            if arr.name in seen:
                prev = seen[arr.name]
                if prev.dtype is not arr.dtype:
                    raise ValueError(
                        f"array {arr.name} redeclared with different dtype across kernels"
                    )
                if arr.is_output and not prev.is_output:
                    seen[arr.name] = arr
            else:
                seen[arr.name] = arr
    return list(seen.values())


def render_host(spec: ProgramSpec, kernels_in_header: bool) -> str:
    """Render ``main.cpp``."""
    v = spec.host_verbosity
    lines: list[str] = []
    from repro.kernels.codegen.common import license_banner

    lines.extend(license_banner(spec.name))
    lines.append(f"// {spec.name}: {spec.description}")
    lines.append("// Generated benchmark program (OpenMP target offload).")
    lines.append("#include <cstdio>")
    lines.append("#include <cstdlib>")
    lines.append("#include <cstring>")
    lines.append("#include <cmath>")
    lines.append("#include <omp.h>")
    if spec.util_header:
        lines.append('#include "benchmark_utils.h"')
    if spec.util_header >= 2:
        lines.append('#include "reference_impl.h"')
    if kernels_in_header:
        lines.append('#include "kernels.h"')
    lines.append("")

    arrays = _unique_arrays(spec)
    flags = list(spec.cmdline.flags)

    if v >= 1:
        lines.append("static void usage(const char *prog) {")
        flag_str = " ".join(f"[--{name} <int>]" for name, _ in flags)
        lines.append(f'  printf("usage: %s {flag_str}\\n", prog);')
        lines.append("}")
        lines.append("")

    if v >= 2 and any(a.is_output for a in arrays):
        out = next(a for a in arrays if a.is_output)
        ct = out.dtype.c_name
        lines.extend(
            [
                "// CPU reference for verification (simplified).",
                f"static double reference_norm(const {ct} *data, long n) {{",
                "  double acc = 0.0;",
                "  for (long i = 0; i < n; i++) acc += (double)data[i] * (double)data[i];",
                "  return sqrt(acc / (double)(n > 0 ? n : 1));",
                "}",
                "",
            ]
        )

    lines.append("int main(int argc, char **argv) {")
    for name, default in flags:
        lines.append(f"  int {name} = {default};")
    lines.append("  for (int i = 1; i < argc; i++) {")
    for j, (name, _) in enumerate(flags):
        kw = "if" if j == 0 else "else if"
        lines.append(
            f'    {kw} (!strcmp(argv[i], "--{name}") && i + 1 < argc) {name} = atoi(argv[++i]);'
        )
    if flags:
        lines.append("    else {")
        if v >= 1:
            lines.append("      usage(argv[0]);")
        lines.append("      return 1;")
        lines.append("    }")
    lines.append("  }")
    if v >= 1:
        shown = ", ".join(f"{name}=%d" for name, _ in flags)
        vals = ", ".join(name for name, _ in flags)
        lines.append(f'  printf("{spec.name}: {shown}\\n", {vals});')
    lines.append("")

    for salt, arr in enumerate(arrays):
        n = _size_expr(arr)
        ct = arr.dtype.c_name
        lines.append(f"  {ct} *{arr.name} = ({ct} *)malloc((size_t)({n}) * sizeof({ct}));")
    for salt, arr in enumerate(arrays):
        n = _size_expr(arr)
        if arr.is_output:
            lines.append(f"  memset({arr.name}, 0, (size_t)({n}) * sizeof({arr.dtype.c_name}));")
        else:
            lines.append(f"  for (long i = 0; i < (long)({n}); i++)")
            lines.append(f"    {arr.name}[i] = {_init_expr(arr, salt)};")
    lines.append("")

    # target data region mapping all arrays for the kernel calls inside.
    maps = []
    for arr in arrays:
        n = _size_expr(arr)
        clause = "tofrom" if arr.is_output else "to"
        maps.append(f"map({clause}: {arr.name}[0:{n}])")
    lines.append(f"  #pragma omp target data {' '.join(maps)}")
    lines.append("  {")
    lines.append("    double t0 = omp_get_wtime();")
    for inst in spec.kernels:
        args = [a.name for a in inst.kernel.global_arrays()]
        args += _host_scalar_args(inst)
        lines.append(f"    {inst.kernel.name}({', '.join(args)});")
    lines.append("    double t1 = omp_get_wtime();")
    lines.append('    printf("kernel time: %.3f ms\\n", (t1 - t0) * 1e3);')
    if spec.util_header >= 2:
        first = spec.kernels[0]
        args = [a.name for a in first.kernel.global_arrays()]
        args += _host_scalar_args(first)
        lines.append("")
        lines.append("    struct BenchOptions opts;")
        lines.append("    default_options(&opts);")
        lines.append("    struct RunStats stats;")
        lines.append("    stats_reset(&stats);")
        lines.append("    WallTimer timer;")
        lines.append(
            "    for (int rep = 0; rep < opts.warmup_runs + opts.timed_runs; rep++) {"
        )
        lines.append("      timer.begin();")
        lines.append(f"      {first.kernel.name}({', '.join(args)});")
        lines.append("      double rep_ms = timer.end_ms();")
        lines.append("      if (rep >= opts.warmup_runs) stats_add(&stats, rep_ms);")
        lines.append("    }")
        lines.append(f'    stats_print(&stats, "{spec.name}");')
    lines.append("  }")
    lines.append("")

    outputs = [a for a in arrays if a.is_output]
    if outputs:
        out = outputs[0]
        n = _size_expr(out)
        lines.append("  double checksum = 0.0;")
        lines.append(f"  for (long i = 0; i < (long)({n}); i++)")
        lines.append(f"    checksum += (double){out.name}[i];")
        lines.append('  printf("checksum: %.6e\\n", checksum);')
        if v >= 2:
            lines.append(f"  double rms = reference_norm({out.name}, (long)({n}));")
            lines.append('  printf("output rms: %.6e\\n", rms);')
            lines.append(
                '  if (!(rms == rms)) { fprintf(stderr, "FAILED: NaN output\\n"); return 2; }'
            )
            lines.append('  printf("PASSED\\n");')
    lines.append("")
    for arr in arrays:
        lines.append(f"  free({arr.name});")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


def render_omp(spec: ProgramSpec) -> RenderedProgram:
    """Render a full OpenMP-offload program (1-3 files)."""
    from repro.kernels.codegen.utilheader import render_util_header

    if spec.language is not Language.OMP:
        raise ValueError(f"program {spec.name} is not an OMP spec")
    kernel_text = "\n\n".join(
        render_kernel(inst.kernel, inst.launch.block.total) for inst in spec.kernels
    )
    files: list[SourceFile] = []
    if spec.util_header:
        files.append(
            SourceFile(
                "benchmark_utils.h",
                render_util_header(spec.util_header, Language.OMP, spec.name),
            )
        )
    if spec.util_header >= 2:
        from repro.kernels.codegen.reference import render_reference_file

        files.append(render_reference_file(spec))
    if spec.split_files:
        header = "\n".join(
            ["#ifndef KERNELS_H", "#define KERNELS_H", "", kernel_text, "", "#endif // KERNELS_H"]
        )
        files.append(SourceFile("kernels.h", header))
        files.append(SourceFile("main.cpp", render_host(spec, kernels_in_header=True)))
    else:
        main = render_host(spec, kernels_in_header=False)
        merged_lines = main.split("\n")
        insert_at = next(i for i, ln in enumerate(merged_lines) if ln.startswith("int main"))
        merged = "\n".join(
            merged_lines[:insert_at] + [kernel_text, ""] + merged_lines[insert_at:]
        )
        files.append(SourceFile("main.cpp", merged))
    return RenderedProgram(spec=spec, files=tuple(files))
