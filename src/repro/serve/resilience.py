"""Serving-side resilience primitives: circuit breaking, hedging, shedding.

The online path's answer to PR 9's batch-sweep fault tolerance. Retry
with backoff (``repro.util.retry``) survives *transient* provider
weather; this module is for the failures retry makes worse:

* :class:`CircuitBreaker` — per-provider closed → open → half-open state
  machine over a sliding window of attempt outcomes. A browned-out
  provider trips its breaker after ``window``-bounded evidence, stops
  receiving traffic for ``cooldown_s``, then earns its way back through
  half-open probes. The clock is injectable so every transition is
  testable in virtual time.
* :class:`LatencyTracker` — a bounded reservoir of recent completion
  latencies; its p95 derives the hedge delay, so hedges fire exactly
  when a request has outlived the healthy tail.
* :class:`HedgePolicy` / :class:`BreakerPolicy` — frozen knob bundles,
  mirroring :class:`~repro.util.retry.RetryPolicy`.
* The shedding taxonomy — :class:`LoadShedError` (429-shaped, carries
  the ``Retry-After`` hint) and :class:`AllProvidersUnavailable` (every
  breaker in the failover chain is open).

Everything here is event-loop-confined by design: the serving engine
mutates breakers and trackers only between awaits on its single loop, so
none of it takes locks. Handler threads observe state through
:meth:`CircuitBreaker.snapshot`, which only reads.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

#: Breaker states, in escalation order.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class LoadShedError(Exception):
    """The service refused admission: queue over budget or deadline
    unmeetable. Maps to HTTP 429 with a ``Retry-After`` hint."""

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class AllProvidersUnavailable(Exception):
    """Every provider in the failover chain has an open breaker.

    ``retry_after`` is the earliest half-open probe opportunity across
    the chain — the honest hint for a client's backoff."""

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs for one provider's circuit breaker.

    The window holds the last ``window`` attempt outcomes; the breaker
    opens when at least ``min_calls`` of them exist and the failure
    fraction reaches ``threshold``. After ``cooldown_s`` it admits
    ``half_open_probes`` trial calls: one success closes it (and clears
    the window — old failures are stale evidence), one failure re-opens
    it for another cooldown.
    """

    window: int = 16
    threshold: float = 0.5
    min_calls: int = 4
    cooldown_s: float = 5.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {self.threshold}"
            )
        if self.min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {self.min_calls}")
        if self.cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass(frozen=True)
class HedgePolicy:
    """When to issue a backup request against the next healthy provider.

    ``delay_s=None`` derives the delay from observed latency: the
    tracker's ``quantile`` (p95 by default), floored at ``min_delay_s``.
    Until ``min_samples`` completions have been observed the floor alone
    applies — better an early hedge than none while the tail is unknown.
    """

    delay_s: float | None = None
    quantile: float = 0.95
    min_delay_s: float = 0.05
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.delay_s is not None and self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.min_delay_s < 0:
            raise ValueError(
                f"min_delay_s must be >= 0, got {self.min_delay_s}"
            )


class LatencyTracker:
    """A bounded reservoir of recent call latencies (seconds)."""

    def __init__(self, maxlen: int = 256):
        self._samples: deque[float] = deque(maxlen=maxlen)

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile of the reservoir (nearest-rank), or ``None``
        when empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def hedge_delay(self, policy: HedgePolicy) -> float:
        """The delay after which a request deserves a hedge."""
        if policy.delay_s is not None:
            return policy.delay_s
        if len(self._samples) < policy.min_samples:
            return policy.min_delay_s
        observed = self.quantile(policy.quantile)
        assert observed is not None  # min_samples > 0 implies non-empty
        return max(policy.min_delay_s, observed)


class CircuitBreaker:
    """Closed → open → half-open breaker over a sliding outcome window.

    Callers pair every :meth:`allow` that returned ``True`` with exactly
    one :meth:`record_success` or :meth:`record_failure` — in half-open
    state ``allow`` hands out scarce probe slots and the records decide
    the next state. Failures are recorded per *attempt* (a retried
    upstream call that fails three times is three window entries), so a
    brownout trips the breaker within one request's retry budget rather
    than after ``window`` whole requests.
    """

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=self.policy.window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_out = 0
        self.opened = 0  # lifetime open transitions, for stats

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; lazily moves open → half-open once the cooldown
        has elapsed (no timers — the clock is consulted on use)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.policy.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probes_out = 0
        return self._state

    def error_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def retry_after(self) -> float:
        """Seconds until this breaker will next admit a call (0 if it
        already would)."""
        if self.state == OPEN:
            return max(
                0.0,
                self.policy.cooldown_s - (self._clock() - self._opened_at),
            )
        return 0.0

    # -- admission + outcomes ------------------------------------------------
    def allow(self) -> bool:
        """May a call go to this provider right now? Half-open grants at
        most ``half_open_probes`` concurrent trials."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._probes_out < self.policy.half_open_probes:
                self._probes_out += 1
                return True
        return False

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            # The probe came back healthy: close and start fresh — the
            # window's failures predate the recovery and would otherwise
            # re-open the breaker on the next blip.
            self._state = CLOSED
            self._outcomes.clear()
            self._probes_out = 0
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._reopen()
            return
        self._outcomes.append(False)
        if (
            self._state == CLOSED
            and len(self._outcomes) >= self.policy.min_calls
            and self.error_rate() >= self.policy.threshold
        ):
            self._reopen()

    def _reopen(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_out = 0
        self.opened += 1

    # -- observability -------------------------------------------------------
    def snapshot(self) -> dict:
        """Read-only view for ``/v1/stats`` and the cache manifest."""
        return {
            "state": self.state,
            "error_rate": round(self.error_rate(), 4),
            "window": len(self._outcomes),
            "opened": self.opened,
            "retry_after_s": round(self.retry_after(), 3),
        }
