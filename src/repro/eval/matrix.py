"""Hardware scenario matrix: one experiment grid, many rooflines.

The paper profiles and prompts against a single GPU (RTX 3080), but its
central question — can LLMs reason about hardware ceilings? — is only
testable across *different* rooflines. This module fans a
(model × RQ × GPU) grid over the shared :class:`~repro.eval.engine.EvalEngine`:

* :func:`scenario_samples` re-profiles the corpus on any
  :class:`~repro.roofline.hardware.GpuSpec` and re-labels each kernel
  against that device's rooflines, keeping the *same kernel subset* (the
  paper's balanced 340) on every device so results are comparable cell to
  cell.
* :func:`run_matrix` evaluates every (model, RQ, GPU) cell. Prompts embed
  the scenario GPU's hardware block, so the content-addressed response
  cache keeps per-device entries disjoint with no extra keying.
* :class:`MatrixResult` reports per-cell accuracy plus a **label-flip
  report**: which kernels change compute-/bandwidth-bound classification
  between rooflines (e.g. FP64-heavy kernels that are compute-bound on a
  gaming part but bandwidth-bound on an HPC part), and whether each model
  *tracks* the flip — predicting the device-specific truth on every GPU
  rather than answering from the code alone.

Classification truth is device-dependent; RQ1's random-roofline arithmetic
and RQ4's fine-tune are not, so the matrix covers the RQ2 (zero-shot) and
RQ3 (two-shot) regimes — plus any registered
:class:`~repro.prompts.variants.PromptVariant` name as an extra
prompt-ablation regime (``no-hint``, ``problem-hint``, ``few-shot-k``…):
a regime label is either an RQ alias or a variant name, and
:func:`regime_variant` resolves both onto the prompt layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.dataset import Sample, paper_dataset
from repro.dataset.build import build_sample
from repro.eval.engine import EvalEngine
from repro.eval.rq23 import classification_items
from repro.eval.runner import RunResult, run_queries
from repro.gpusim import device_for
from repro.kernels.corpus import default_corpus
from repro.llm.base import LlmModel
from repro.llm.registry import all_models
from repro.prompts import PromptVariant, all_variants, get_variant
from repro.roofline.hardware import GPU_DATABASE, GpuSpec, short_gpu_name
from repro.tokenizer import corpus_tokenizer
from repro.types import Boundedness
from repro.util.parallel import DEFAULT_BACKEND, parallel_map
from repro.util.tables import format_table

#: The paper's classification regimes (device-dependent truth), as RQ
#: aliases for the two seed prompt variants.
MATRIX_RQS = ("rq2", "rq3")

#: RQ alias → seed prompt-variant name.
REGIME_VARIANTS = {"rq2": "zero-shot", "rq3": "few-shot-2"}


def regime_variant(label: str) -> PromptVariant:
    """Resolve a matrix regime label onto its prompt variant.

    A label is either an RQ alias (``rq2``/``rq3``) or a registered
    :class:`PromptVariant` name; anything else raises ``ValueError`` with
    the valid choices.
    """
    try:
        return get_variant(REGIME_VARIANTS.get(label, label))
    except KeyError:
        names = tuple(v.name for v in all_variants())
        raise ValueError(
            f"unknown matrix regime {label!r}; choose an RQ alias from "
            f"{MATRIX_RQS} or a prompt variant from {names}"
        ) from None

#: Memoized device-specific sample sets, keyed by (gpu spec, uid subset).
#: Keyed by the frozen spec itself (like :func:`repro.gpusim.device_for`),
#: so a tweaked spec sharing a marketing name never aliases.
_SCENARIO_MEMO: dict[tuple[GpuSpec, tuple[str, ...]], tuple[Sample, ...]] = {}


def scenario_samples(
    gpu: GpuSpec,
    *,
    uids: Sequence[str] | None = None,
    jobs: int = 1,
) -> tuple[Sample, ...]:
    """The balanced dataset re-profiled and re-labelled for one GPU.

    ``uids`` defaults to the paper's balanced subset (same kernels on every
    device, in the same order — the invariant the flip report relies on);
    an explicit ``uids`` subset profiles only those programs. Either way
    the profiles come from one batched two-phase
    :func:`repro.gpusim.profile_programs` pass: the device-independent IR
    walk is shared across every scenario GPU (and with the dataset
    pipeline), only the cheap per-device finalize runs per roofline, and a
    warm profile store serves whole device batches with zero walks. The
    render/token-count half is device-independent too and comes from the
    shared :func:`repro.dataset.text.program_texts` pass — a 6-device
    sweep renders and tokenizes each program once, not six times.
    Profiling is deterministic per (kernel, device), so the result is
    memoized per (gpu, subset) and stable across calls and processes.
    """
    from repro.dataset.text import program_texts
    from repro.gpusim import profile_programs

    corpus = default_corpus()
    if uids is None:
        uids = [s.uid for s in paper_dataset(jobs=jobs).balanced]
    key = (gpu, tuple(uids))
    hit = _SCENARIO_MEMO.get(key)
    if hit is not None:
        return hit
    device = device_for(gpu)
    tokenizer = corpus_tokenizer()
    programs = [corpus.get(uid) for uid in uids]
    profiles = profile_programs(programs, device, jobs=jobs)
    texts = program_texts(programs, tokenizer, jobs=jobs)
    samples = tuple(
        parallel_map(
            lambda p: build_sample(
                p, device, tokenizer, profile=profiles[p.uid],
                text=texts[p.uid],
            ),
            programs,
            jobs=jobs,
        )
    )
    _SCENARIO_MEMO[key] = samples
    return samples


def grid_uids(limit: int = 0, *, jobs: int = 1) -> tuple[str, ...]:
    """The kernel subset of one sweep grid: the paper's balanced set,
    optionally truncated to its first ``limit`` uids.

    The same subset is used on every device (keeping flips well-defined)
    and by every shard of a distributed sweep (keeping shard plans and
    cache contents aligned with the single-machine run).
    """
    balanced = paper_dataset(jobs=jobs).balanced
    uids = tuple(s.uid for s in balanced)
    return uids[:limit] if limit else uids


@dataclass(frozen=True)
class MatrixCell:
    """One (model, regime, GPU) evaluation."""

    model_name: str
    gpu_name: str
    rq: str  # regime label: "rq2" | "rq3" | a prompt-variant name
    run: RunResult

    @property
    def accuracy(self) -> float:
        return self.run.accuracy


@dataclass(frozen=True)
class KernelFlip:
    """One kernel whose ground-truth label differs between rooflines."""

    uid: str
    labels: tuple[tuple[str, Boundedness], ...]  # (gpu name, truth), scenario order

    def label_on(self, gpu_name: str) -> Boundedness:
        for name, label in self.labels:
            if name == gpu_name:
                return label
        raise KeyError(gpu_name)

    @property
    def distinct_labels(self) -> frozenset[Boundedness]:
        return frozenset(label for _, label in self.labels)


@dataclass(frozen=True)
class FlipTracking:
    """How well one (model, RQ) tracks the flip kernels across devices.

    ``tracked`` counts flip kernels the model classifies correctly on
    *every* scenario GPU — the only way to be right on both sides of a
    flip is to actually use the hardware block, not just the code.
    """

    model_name: str
    rq: str
    tracked: int
    total: int

    @property
    def rate(self) -> float:
        return self.tracked / self.total if self.total else 0.0


@dataclass(frozen=True)
class MatrixResult:
    """The full sweep: cells, flip report, and renderers."""

    gpu_names: tuple[str, ...]
    model_names: tuple[str, ...]
    rqs: tuple[str, ...]
    num_kernels: int
    cells: tuple[MatrixCell, ...]
    flips: tuple[KernelFlip, ...]

    @cached_property
    def _cell_index(self) -> dict[tuple[str, str, str], MatrixCell]:
        return {(c.model_name, c.gpu_name, c.rq): c for c in self.cells}

    def cell(self, model_name: str, gpu_name: str, rq: str) -> MatrixCell:
        try:
            return self._cell_index[(model_name, gpu_name, rq)]
        except KeyError:
            raise KeyError((model_name, gpu_name, rq)) from None

    # -- flip tracking -------------------------------------------------------
    def _predictions(self, model_name: str, rq: str) -> dict[str, dict[str, object]]:
        """uid → {gpu name → predicted label} for one (model, RQ)."""
        out: dict[str, dict[str, object]] = {}
        for gpu_name in self.gpu_names:
            for record in self.cell(model_name, gpu_name, rq).run.records:
                out.setdefault(record.item_id, {})[gpu_name] = record.prediction
        return out

    @cached_property
    def _tracked_uids(self) -> dict[tuple[str, str], frozenset[str]]:
        """(model, RQ) → flip kernels predicted correctly on every device.

        Computed once per result (the records are immutable); both the
        tracking and flip tables read from this.
        """
        out: dict[tuple[str, str], frozenset[str]] = {}
        for model_name in self.model_names:
            for rq in self.rqs:
                preds = self._predictions(model_name, rq)
                out[(model_name, rq)] = frozenset(
                    flip.uid
                    for flip in self.flips
                    if all(
                        preds.get(flip.uid, {}).get(gpu) == truth
                        for gpu, truth in flip.labels
                    )
                )
        return out

    def flip_tracking(self) -> list[FlipTracking]:
        """Per (model, RQ): how many flip kernels are right on every device."""
        return [
            FlipTracking(
                model_name=model_name,
                rq=rq,
                tracked=len(self._tracked_uids[(model_name, rq)]),
                total=len(self.flips),
            )
            for model_name in self.model_names
            for rq in self.rqs
        ]

    def digest(self) -> str:
        """SHA-256 over the whole sweep (axes, per-cell run digests, flips).

        Two sweeps of the same grid — whatever the worker count, backend,
        or shard/merge plan that produced their caches — must agree on
        this value; CI and the shard benchmark assert exactly that.
        """
        payload = repr((
            self.gpu_names,
            self.model_names,
            self.rqs,
            self.num_kernels,
            tuple(
                (c.model_name, c.gpu_name, c.rq, c.run.digest())
                for c in self.cells
            ),
            self.flips,
        ))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_json(self) -> dict:
        """JSON value form: axes, per-cell metrics, flips, tracking."""
        return {
            "type": "matrix",
            "digest": self.digest(),
            "gpus": list(self.gpu_names),
            "models": list(self.model_names),
            "regimes": list(self.rqs),
            "num_kernels": self.num_kernels,
            "cells": [
                {
                    "model": c.model_name,
                    "gpu": c.gpu_name,
                    "regime": c.rq,
                    "accuracy": c.accuracy,
                    "macro_f1": c.run.metrics().macro_f1,
                    "mcc": c.run.metrics().mcc,
                    "run_digest": c.run.digest(),
                }
                for c in self.cells
            ],
            "flips": [
                {
                    "uid": f.uid,
                    "labels": {gpu: label.word for gpu, label in f.labels},
                }
                for f in self.flips
            ],
            "flip_tracking": [
                {
                    "model": t.model_name,
                    "regime": t.rq,
                    "tracked": t.tracked,
                    "total": t.total,
                }
                for t in self.flip_tracking()
            ],
        }

    # -- rendering -----------------------------------------------------------
    def render_accuracy_table(self) -> str:
        headers = ["Model", "RQ"] + [short_gpu_name(g) for g in self.gpu_names]
        rows = []
        for model_name in self.model_names:
            for rq in self.rqs:
                rows.append(
                    [model_name, rq]
                    + [
                        self.cell(model_name, g, rq).accuracy
                        for g in self.gpu_names
                    ]
                )
        return format_table(
            headers,
            rows,
            title=(
                f"Hardware matrix — accuracy over {self.num_kernels} kernels "
                f"× {len(self.gpu_names)} GPUs"
            ),
        )

    def render_flip_table(self, limit: int = 20) -> str:
        headers = ["Kernel"] + [short_gpu_name(g) for g in self.gpu_names] + [
            "Tracked by"
        ]
        trackers = {
            flip.uid: sum(
                flip.uid in tracked for tracked in self._tracked_uids.values()
            )
            for flip in self.flips
        }
        total_cells = len(self.model_names) * len(self.rqs)
        rows = []
        for flip in self.flips[:limit]:
            rows.append(
                [flip.uid]
                + [flip.label_on(g).value for g in self.gpu_names]
                + [f"{trackers[flip.uid]}/{total_cells}"]
            )
        title = (
            f"Label flips — {len(self.flips)} of {self.num_kernels} kernels "
            "change class between rooflines"
        )
        if len(self.flips) > limit:
            title += f" (showing first {limit})"
        return format_table(headers, rows, title=title)

    def render_tracking_table(self) -> str:
        rows = [
            [t.model_name, t.rq, f"{t.tracked}/{t.total}", 100.0 * t.rate]
            for t in self.flip_tracking()
        ]
        return format_table(
            ["Model", "RQ", "Flips tracked", "Rate %"],
            rows,
            title="Flip tracking — correct on every device's side of the flip",
        )

    def render(self, flip_limit: int = 20) -> str:
        parts = [self.render_accuracy_table()]
        if self.flips:
            parts.append(self.render_flip_table(limit=flip_limit))
            parts.append(self.render_tracking_table())
        else:
            parts.append(
                "No label flips: every kernel keeps its class on all "
                "selected GPUs."
            )
        return "\n\n".join(parts)


def label_flips(
    samples_by_gpu: dict[str, Sequence[Sample]]
) -> tuple[KernelFlip, ...]:
    """Kernels whose ground-truth label differs across the given scenarios.

    ``samples_by_gpu`` maps GPU name → device-labelled samples over one
    common uid set (as :func:`scenario_samples` produces).
    """
    gpu_names = list(samples_by_gpu)
    by_uid: dict[str, list[tuple[str, Boundedness]]] = {}
    for gpu_name in gpu_names:
        for sample in samples_by_gpu[gpu_name]:
            by_uid.setdefault(sample.uid, []).append((gpu_name, sample.label))
    flips = []
    for uid, labels in by_uid.items():
        if len({label for _, label in labels}) > 1:
            flips.append(KernelFlip(uid=uid, labels=tuple(labels)))
    return tuple(flips)


def run_matrix(
    models: Sequence[LlmModel] | None = None,
    gpus: Sequence[GpuSpec] | None = None,
    *,
    rqs: Sequence[str] = ("rq2",),
    limit: int = 0,
    engine: EvalEngine | None = None,
    jobs: int = 1,
    backend: str = DEFAULT_BACKEND,
) -> MatrixResult:
    """Sweep the full (model × regime × GPU) grid.

    One engine spans every cell, so warm caches replay the whole matrix and
    ``engine.stats`` describe the sweep; pass ``backend="process"`` for a
    cold sweep that scales with cores. ``rqs`` entries are regime labels —
    RQ aliases or prompt-variant names (see :func:`regime_variant`).
    ``limit`` truncates the kernel subset *before* profiling — only the
    first N balanced kernels are profiled per device, and the same kernels
    on every device keep flips well-defined.
    """
    models = list(models) if models is not None else all_models()
    gpus = list(gpus) if gpus is not None else list(GPU_DATABASE.values())
    variants = {rq: regime_variant(rq) for rq in rqs}
    if len({v.name for v in variants.values()}) != len(rqs):
        raise ValueError(f"duplicate matrix regimes in {tuple(rqs)}")
    if not gpus:
        raise ValueError("no GPUs selected")
    engine = engine or EvalEngine(jobs=jobs, backend=backend)

    uids = grid_uids(limit, jobs=engine.jobs) if limit else None

    samples_by_gpu: dict[str, Sequence[Sample]] = {}
    cells: list[MatrixCell] = []
    num_kernels = 0
    for gpu in gpus:
        samples = scenario_samples(gpu, uids=uids, jobs=engine.jobs)
        samples_by_gpu[gpu.name] = samples
        num_kernels = len(samples)
        for model in models:
            for rq in rqs:
                items = classification_items(
                    samples, variant=variants[rq], gpu=gpu
                )
                run = run_queries(model, items, engine=engine)
                cells.append(
                    MatrixCell(
                        model_name=model.name,
                        gpu_name=gpu.name,
                        rq=rq,
                        run=run,
                    )
                )

    return MatrixResult(
        gpu_names=tuple(g.name for g in gpus),
        model_names=tuple(m.name for m in models),
        rqs=tuple(rqs),
        num_kernels=num_kernels,
        cells=tuple(cells),
        flips=label_flips(samples_by_gpu),
    )
