"""CI chaos test for ``repro-paper serve`` resilience.

End-to-end, across real processes:

1. start ``repro-paper serve`` with a failover chain
   (``--provider-family emulated,wire``) and an injected
   ``provider_brownout`` plan that permanently browns out the primary
   (``emulated:o3-mini-high``);
2. issue **cold** HTTP classification queries (empty response cache, so
   every one must reach a provider) and assert each answers 200 —
   failover to the wire adapter keeps the service up while the primary's
   circuit breaker opens;
3. assert ``/v1/stats`` tells that story: a failed-over count covering
   every cold query, the primary's breaker open, the fallback's closed;
4. SIGTERM the server and assert the graceful-drain contract: it prints
   the drain lines, leaves a ``serve-stats.json`` snapshot in the cache
   dir (surfaced by ``repro-paper cache``), and exits 0 with no stuck
   threads.

Exits non-zero with a diagnostic on any violation.

Run:  PYTHONPATH=src python scripts/serve_chaos.py [--limit N]
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.parse
import urllib.request
from pathlib import Path

MODEL = "o3-mini-high"
PRIMARY_LABEL = f"emulated:{MODEL}"
FALLBACK_LABEL = f"openai:{MODEL}"
CLI = [sys.executable, "-m", "repro.cli"]
BROWNOUT = f"seed=1;provider_brownout:attempts=9999,provider={PRIMARY_LABEL}"


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [*CLI, *args], capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"command {' '.join(args)} failed rc={proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def get_json(url: str, **params) -> dict:
    if params:
        url = f"{url}?{urllib.parse.urlencode(params)}"
    with urllib.request.urlopen(url, timeout=120) as resp:
        return json.loads(resp.read().decode("utf-8"))


def start_server(cache_dir: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            *CLI, "serve", "--port", "0", "--cache-dir", cache_dir, "--warm",
            "--provider-family", "emulated,wire",
            "--inject-faults", BROWNOUT,
            "--retries", "2", "--no-hedge", "--drain-timeout", "5",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 300
    url = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"serve exited rc={proc.wait()} before binding")
        sys.stdout.write(f"  [serve] {line}")
        m = re.search(r"serving on (http://\S+)", line)
        if m:
            url = m.group(1)
            break
    if url is None:
        proc.kill()
        raise SystemExit("serve never reported its URL")
    for _ in range(100):
        try:
            if get_json(f"{url}/healthz")["status"] == "ok":
                return proc, url
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise SystemExit("serve bound but /healthz never came up")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=6,
                        help="cold kernels to query (default 6)")
    parser.add_argument("--cache-dir", default=None,
                        help="response cache dir (default: a fresh temp "
                             "dir, so every query is cold)")
    args = parser.parse_args()
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="serve-chaos-")

    print(f"1) starting serve with a browned-out primary "
          f"(chain emulated,wire; cache @ {cache_dir})")
    proc, url = start_server(cache_dir)
    try:
        uids = [s["uid"] for s in get_json(f"{url}/v1/samples")["samples"]]
        picks = uids[:: max(1, len(uids) // args.limit)][:args.limit]

        print(f"2) issuing {len(picks)} cold queries "
              "(each must fail over to the wire adapter)")
        for uid in picks:
            body = get_json(f"{url}/v1/classify", uid=uid, model=MODEL)
            if body["cached"]:
                raise SystemExit(f"{uid}: served warm, expected cold")
            if body["served_by"] != FALLBACK_LABEL:
                raise SystemExit(
                    f"{uid}: served by {body['served_by']!r}, expected "
                    f"failover to {FALLBACK_LABEL!r}"
                )
            print(f"   {uid}: {body['prediction']} via {body['served_by']}")

        print("3) checking /v1/stats for the failover story")
        stats = get_json(f"{url}/v1/stats")
        if stats["failed_over"] < len(picks):
            raise SystemExit(
                f"failed_over={stats['failed_over']} < {len(picks)} "
                "cold queries — failover did not carry the burst"
            )
        breakers = stats["breakers"]
        primary = breakers.get(PRIMARY_LABEL)
        fallback = breakers.get(FALLBACK_LABEL)
        if primary is None or primary["state"] == "closed":
            raise SystemExit(
                f"primary breaker never opened under the brownout: {primary}"
            )
        if fallback is None or fallback["state"] != "closed":
            raise SystemExit(f"fallback breaker unhealthy: {fallback}")
        if stats["misses"] != len(picks):
            raise SystemExit(
                f"expected {len(picks)} misses, saw {stats['misses']}"
            )
        print(f"   failed_over={stats['failed_over']} "
              f"primary={primary['state']} (opened {primary['opened']}x) "
              f"fallback={fallback['state']}")

        print("4) SIGTERM → graceful drain")
        proc.send_signal(signal.SIGTERM)
        try:
            tail, _ = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise SystemExit("serve did not exit within 30s of SIGTERM — "
                             "stuck threads?")
        for line in tail.splitlines():
            print(f"  [serve] {line}")
        if proc.returncode != 0:
            raise SystemExit(
                f"serve exited rc={proc.returncode} after SIGTERM, expected 0"
            )
        if "draining..." not in tail or "drained clean" not in tail:
            raise SystemExit(f"drain lines missing from output:\n{tail}")
    finally:
        if proc.poll() is None:
            proc.kill()

    print("5) checking the stats snapshot survives for `repro-paper cache`")
    snapshot = Path(cache_dir) / "serve-stats.json"
    if not snapshot.is_file():
        raise SystemExit(f"no stats snapshot at {snapshot}")
    data = json.loads(snapshot.read_text())
    if data["failed_over"] < len(picks):
        raise SystemExit(f"snapshot lost the failover counters: {data}")
    out = run_cli("cache", "--cache-dir", cache_dir)
    if "serve:" not in out or "failed over" not in out:
        raise SystemExit(f"`cache` does not surface the snapshot:\n{out}")
    print("   snapshot surfaced by `repro-paper cache`")

    print("serve chaos: OK (failover kept every query answering, breaker "
          "opened, SIGTERM drained clean, exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
