"""Tests for the prompt-variant registry (repro.prompts.variants).

The golden-digest suite pins byte-compatibility: the two seed variants
(zero-shot / few-shot-2) must keep producing the exact prompt bytes and
response-cache keys that every pre-registry sweep wrote, so warm stores
replay with zero new completions across the API change. The hashes below
were captured before the registry existed; they are exact assertions.
"""

import hashlib

import pytest

from repro.eval.engine import cache_key
from repro.eval.matrix import REGIME_VARIANTS, regime_variant, run_matrix
from repro.eval.rq23 import classification_items
from repro.llm import get_model
from repro.llm.registry import get_config
from repro.prompts import (
    FEW_SHOT_2,
    MAX_FEW_SHOT,
    NO_HINT,
    PROBLEM_HINT,
    ZERO_SHOT,
    PromptVariant,
    all_variants,
    build_classify_prompt,
    few_shot_variant,
    get_variant,
    real_example_sequence,
    register_variant,
    variant_for_few_shot,
)
from repro.prompts.variants import PROBLEM_HINT_BLOCK
from repro.roofline.hardware import get_gpu

GOLDEN_UID = "cuda/absdiff-v1"
GOLDEN_CONFIG = "o3-mini-high"

#: sha256 of the full prompt text for the golden kernel, per variant and
#: device — captured before the PromptVariant refactor.
GOLDEN_PROMPT_SHA = {
    ("zero-shot", None):
        "d2a175bd44847c7638d39f0e85990deb0e895cb1e90a1abf0421069b50c228c5",
    ("few-shot-2", None):
        "634e517202e543848c8c0e6f1212f5d1838669f53ee8a3ed93374a607711de1b",
    ("zero-shot", "H100"):
        "a97a4441f8d121393bbd3d4931e919917d385d406075dc0c85ea962bda73bf1d",
    ("few-shot-2", "H100"):
        "169f1e28991394bf40a6cb5e82052643534c715a9a3e7bfd8c1d622a6b5b37d1",
}

#: Response-cache keys for the default-device prompts above under the
#: o3-mini-high config — what the seed sweeps' stores are keyed by.
GOLDEN_CACHE_KEY = {
    "zero-shot":
        "25f3f9270f4349b693a8c3754fb97a1b0af662d7584af524397019936c45ff5b",
    "few-shot-2":
        "c506fc5440cadef914df35466fb7ad0dbe32a6c0970b6ae746b2db798eb34fe3",
}

#: run_matrix([o3-mini-high], [V100, H100], rqs=("rq2", "rq3"), limit=12)
#: digest, captured pre-refactor; pins the whole grid's value identity.
GOLDEN_MATRIX_DIGEST = (
    "1059a2d925cceba3dd6e96ca9e6580ef7e07e22cd03fd59e1f6824591f9a2ef7"
)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def golden_sample(dataset):
    return next(s for s in dataset.balanced if s.uid == GOLDEN_UID)


class TestGoldenByteCompatibility:
    @pytest.mark.parametrize(
        "variant, gpu", sorted(GOLDEN_PROMPT_SHA, key=str)
    )
    def test_prompt_bytes_pinned(self, golden_sample, variant, gpu):
        spec = get_gpu(gpu) if gpu else None
        prompt = build_classify_prompt(
            golden_sample, variant=variant, gpu=spec
        )
        assert _sha(prompt.text) == GOLDEN_PROMPT_SHA[(variant, gpu)]

    @pytest.mark.parametrize("variant", sorted(GOLDEN_CACHE_KEY))
    def test_cache_keys_pinned(self, golden_sample, variant):
        prompt = build_classify_prompt(golden_sample, variant=variant)
        key = cache_key(get_config(GOLDEN_CONFIG), prompt.text)
        assert key == GOLDEN_CACHE_KEY[variant]

    @pytest.mark.parametrize("few_shot", [False, True])
    def test_deprecated_few_shot_alias_is_byte_identical(
        self, golden_sample, few_shot
    ):
        via_flag = build_classify_prompt(golden_sample, few_shot=few_shot)
        name = "few-shot-2" if few_shot else "zero-shot"
        via_variant = build_classify_prompt(golden_sample, variant=name)
        assert via_flag.text == via_variant.text
        assert via_flag.variant == via_variant.variant
        assert via_flag.few_shot is few_shot

    def test_matrix_digest_pinned(self, dataset):
        result = run_matrix(
            [get_model(GOLDEN_CONFIG)],
            [get_gpu("V100"), get_gpu("H100")],
            rqs=("rq2", "rq3"),
            limit=12,
            jobs=2,
        )
        assert result.digest() == GOLDEN_MATRIX_DIGEST


class TestRegistry:
    def test_seed_variants_registered(self):
        names = [v.name for v in all_variants()]
        assert names[:4] == [
            "zero-shot", "few-shot-2", "no-hint", "problem-hint"
        ]

    def test_get_variant_by_name_and_instance(self):
        assert get_variant("zero-shot") is ZERO_SHOT
        assert get_variant(ZERO_SHOT) is ZERO_SHOT
        assert get_variant("few-shot-2") is FEW_SHOT_2

    def test_dynamic_few_shot_k(self):
        v = get_variant("few-shot-3")
        assert v.shots == 3
        assert v.few_shot
        assert get_variant(f"few-shot-{MAX_FEW_SHOT}").shots == MAX_FEW_SHOT

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            get_variant("bogus")
        with pytest.raises(KeyError):
            get_variant(f"few-shot-{MAX_FEW_SHOT + 1}")

    def test_reregister_same_definition_is_idempotent(self):
        register_variant(ZERO_SHOT)
        assert get_variant("zero-shot") is ZERO_SHOT

    def test_reregister_conflicting_definition_raises(self):
        clash = PromptVariant("zero-shot", "none")
        with pytest.raises(ValueError):
            register_variant(clash)

    def test_variant_for_few_shot(self):
        assert variant_for_few_shot(False) is ZERO_SHOT
        assert variant_for_few_shot(True) is FEW_SHOT_2

    def test_invalid_definitions_rejected(self):
        with pytest.raises(ValueError):
            PromptVariant("bad", "real", shots=0)     # real needs shots
        with pytest.raises(ValueError):
            PromptVariant("bad", "pseudo", shots=2)   # shots need real
        with pytest.raises(ValueError):
            PromptVariant("bad", "martian")           # unknown example mode
        with pytest.raises(ValueError):
            few_shot_variant(MAX_FEW_SHOT + 1)


class TestAblationVariants:
    def test_no_hint_drops_examples(self, golden_sample):
        bare = build_classify_prompt(golden_sample, variant=NO_HINT)
        zero = build_classify_prompt(golden_sample, variant=ZERO_SHOT)
        assert "Examples:" not in bare.text
        assert "Examples:" in zero.text
        assert len(bare.text) < len(zero.text)

    def test_problem_hint_adds_hint_block(self, golden_sample):
        hinted = build_classify_prompt(golden_sample, variant=PROBLEM_HINT)
        zero = build_classify_prompt(golden_sample, variant=ZERO_SHOT)
        assert PROBLEM_HINT_BLOCK.strip() in hinted.text
        assert PROBLEM_HINT_BLOCK.strip() not in zero.text
        assert "Examples:" in hinted.text  # hint rides on the pseudo shots

    def test_all_variants_produce_distinct_prompts(self, golden_sample):
        texts = {
            v.name: build_classify_prompt(golden_sample, variant=v).text
            for v in all_variants()
        }
        assert len(set(texts.values())) == len(texts)

    @pytest.mark.parametrize("shots", [1, 2, 4])
    def test_few_shot_k_example_counts(self, golden_sample, shots):
        prompt = build_classify_prompt(
            golden_sample, variant=f"few-shot-{shots}"
        )
        assert prompt.text.count("\nExample ") == shots
        seq = real_example_sequence(golden_sample.language, shots)
        assert len(seq) == shots

    def test_example_sequence_extends_pairwise(self, golden_sample):
        lang = golden_sample.language
        two = real_example_sequence(lang, 2)
        four = real_example_sequence(lang, 4)
        assert four[:2] == two
        assert len({e.name for e in four}) == 4
        with pytest.raises(ValueError):
            real_example_sequence(lang, 0)

    def test_both_args_rejected(self, golden_sample):
        with pytest.raises(ValueError):
            build_classify_prompt(
                golden_sample, few_shot=True, variant="zero-shot"
            )


class TestRegimeAxis:
    def test_rq_aliases(self):
        assert REGIME_VARIANTS == {"rq2": "zero-shot", "rq3": "few-shot-2"}
        assert regime_variant("rq2") is ZERO_SHOT
        assert regime_variant("rq3") is FEW_SHOT_2

    def test_variant_names_pass_through(self):
        assert regime_variant("no-hint") is NO_HINT
        assert regime_variant("few-shot-4").shots == 4

    def test_unknown_regime_raises(self):
        with pytest.raises(ValueError, match="unknown matrix regime"):
            regime_variant("rq9")

    def test_duplicate_regimes_rejected(self, dataset):
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix(
                [get_model(GOLDEN_CONFIG)],
                [get_gpu("V100")],
                rqs=("rq2", "zero-shot"),
                limit=2,
            )

    def test_classification_items_variant_path(self, dataset):
        samples = dataset.balanced[:3]
        legacy = classification_items(samples, few_shot=False)
        modern = classification_items(samples, variant="zero-shot")
        assert legacy == modern
        with pytest.raises(ValueError):
            classification_items(samples, few_shot=True, variant="no-hint")
