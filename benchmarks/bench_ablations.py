"""Ablation benches for the design choices DESIGN.md §5 calls out.

A1 — analysis-depth ablation: force the emulator's deep static path off
    (depth 0) and fully on (depth 1, no derailing) to expose the mechanism
    gap that separates the reasoning and non-reasoning tiers.
A2 — context-length ablation: accuracy versus prompt-size quartile for a
    context-sensitive model (the "lost in the middle" effect the attention
    term models).
A3 — argv ablation: the deep analyst with and without the command-line trip
    counts the prompt provides (why the paper includes argv in Figure 4).
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.eval.metrics import MetricReport
from repro.llm import get_config
from repro.llm.base import LlmModel
from repro.prompts import build_classify_prompt
from repro.util.tables import format_table


def _metrics(model, prompt_samples):
    truths = [s.label for s in prompt_samples]
    preds = [
        model.complete(build_classify_prompt(s).text).boundedness()
        for s in prompt_samples
    ]
    return MetricReport.from_predictions(truths, preds)


def _depth_ablation(balanced):
    base = get_config("o3-mini-high")
    variants = {
        "lexical only (depth=0)": dataclasses.replace(
            base, analysis_depth=0.0),
        "calibrated (o3-mini-high)": base,
        "deep always (no derail)": dataclasses.replace(
            base, analysis_depth=1.0, base_fail=0.0,
            attention_tokens=1e12, deep_noise=0.0),
    }
    return {k: _metrics(LlmModel(v), balanced) for k, v in variants.items()}


def test_ablation_analysis_depth(benchmark, balanced):
    results = benchmark.pedantic(_depth_ablation, args=(balanced,),
                                 rounds=1, iterations=1)
    rows = [[k, m.accuracy, m.macro_f1, m.mcc] for k, m in results.items()]
    print()
    print(format_table(["Variant", "Acc", "F1", "MCC"], rows,
                       title="A1 — analysis-depth ablation (340 samples)"))
    accs = [m.accuracy for m in results.values()]
    assert accs[0] < accs[1] < accs[2]  # lexical < calibrated < ideal
    assert accs[2] >= 75.0  # the static analyst's ceiling
    assert accs[0] <= 60.0


def test_ablation_context_length(benchmark, balanced):
    def run():
        model = LlmModel(get_config("o1"))  # tight attention budget
        ordered = sorted(balanced, key=lambda s: s.token_count)
        quartiles = [ordered[i::4] for i in range(4)]
        # quartile by token count, preserving label mix via striding
        out = []
        for i, q in enumerate(quartiles):
            out.append((i, statistics.mean(s.token_count for s in q),
                        _metrics(model, q).accuracy))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["Quartile (stride)", "Mean tokens", "Acc"], rows,
                       title="A2 — context-length sensitivity (o1)"))
    # striding preserves mix, so differences here reflect noise, not length;
    # the real length effect shows up in the RQ2→RQ3 deltas (bench E5).
    accs = [r[2] for r in rows]
    assert max(accs) - min(accs) < 25.0


def test_ablation_argv_trip_counts(benchmark, balanced):
    """The deep analyst loses accuracy when denied the argv-derived trip
    counts — the reason the paper's prompt includes the command line."""
    from repro.analysis import analyze_kernel, classify_static, find_kernel
    from repro.roofline import RTX_3080

    bp = {oc: rl.balance_point for oc, rl in RTX_3080.rooflines()}

    def argv_values(argv):
        toks = argv.split()
        return {
            t[2:]: int(v)
            for t, v in zip(toks, toks[1:])
            if t.startswith("--") and v.lstrip("-").isdigit()
        }

    def run():
        with_argv = without_argv = 0
        for s in balanced:
            k = find_kernel(s.source, s.kernel_name, s.language)
            est_with = analyze_kernel(k, param_values=argv_values(s.argv))
            est_without = analyze_kernel(k, param_values={})
            if classify_static(est_with, bp) == s.label:
                with_argv += 1
            if classify_static(est_without, bp) == s.label:
                without_argv += 1
        n = len(balanced)
        return 100.0 * with_argv / n, 100.0 * without_argv / n

    acc_with, acc_without = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Analyst variant", "Acc"],
        [["with argv trip counts", acc_with],
         ["without argv (default guesses)", acc_without]],
        title="A3 — argv ablation for the static analyst",
    ))
    assert acc_with > acc_without
