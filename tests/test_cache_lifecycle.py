"""Cache lifecycle: size-bounded eviction and the manifest.

Covers the ``DiskResponseStore`` bound (oldest-written entries evicted
first, amortised checks), the per-model manifest behind ``repro-paper
cache``, and the v2 record layout that tags entries with their model.
"""

import json
import os
import time

import pytest

from repro.cli import main
from repro.eval.engine import (
    CACHE_MAX_BYTES_ENV,
    CachedResponse,
    DiskResponseStore,
    EvalEngine,
    default_cache_max_bytes,
)
from repro.eval.runner import run_queries
from repro.llm import get_model
from repro.prompts.rq1 import build_rq1_prompt, generate_rq1_questions


def _response(i: int, model: str = "test-model") -> CachedResponse:
    return CachedResponse(
        text=f"Compute {i}",
        input_tokens=10 + i,
        output_tokens=1,
        reasoning_tokens=0,
        model=model,
    )


def _fill(store: DiskResponseStore, n: int, *, model: str = "test-model"):
    keys = [f"{i:02x}{'0' * 62}" for i in range(n)]
    for i, key in enumerate(keys):
        store.put(key, _response(i, model=model))
    return keys


class TestEviction:
    def test_oldest_segments_evicted_first(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        keys = _fill(store, 8)  # distinct prefixes: one segment per key
        # Age the first half explicitly (mtime drives eviction order).
        now = time.time()
        for i, key in enumerate(keys[:4]):
            seg = store._segment_path("responses-", key[:2])
            os.utime(seg, (now - 1000 + i, now - 1000 + i))
        entry_size = store.size_bytes() // 8
        removed = store.evict(entry_size * 4)
        assert removed == 4
        survivors = {k for k, _ in store.iter_entries()}
        assert survivors == set(keys[4:])

    def test_evict_noop_under_bound(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        _fill(store, 3)
        assert store.evict(store.size_bytes()) == 0
        assert len(store) == 3

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        _fill(store, 3)
        assert store.evict() == 0
        assert store.max_bytes is None

    def test_immediate_puts_enforce_bound(self, tmp_path):
        store = DiskResponseStore(tmp_path, max_bytes=1)
        _fill(store, 4)  # outside deferred(): every put flushes + evicts
        assert len(store) == 0

    def test_deferred_puts_batch_into_one_segment(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        keys = [f"aa{i:062x}" for i in range(10)]  # one shared shard
        with store.deferred():
            for i, key in enumerate(keys):
                store.put(key, _response(i))
            # Pending entries serve reads before anything hits disk.
            assert store.get(keys[0]) == _response(0)
            assert store._segment_files() == []
        assert len(store._segment_files()) == 1  # one merge for the batch
        assert {k for k, _ in store.iter_entries()} == set(keys)

    def test_zero_bound_keeps_nothing_negative_rejected(self, tmp_path):
        # 0 used to silently coerce to "unbounded" — now it means what it
        # says (keep nothing), and negatives are rejected outright.
        store = DiskResponseStore(tmp_path / "zero", max_bytes=0)
        assert store.max_bytes == 0
        _fill(store, 2)
        assert len(store) == 0
        with pytest.raises(ValueError):
            DiskResponseStore(tmp_path / "neg", max_bytes=-5)
        # evict(0) follows the constructor's convention.
        unbounded = DiskResponseStore(tmp_path / "ub")
        _fill(unbounded, 2)
        assert unbounded.evict(0) == 2
        assert len(unbounded) == 0

    def test_engine_sweep_respects_bound(self):
        questions = generate_rq1_questions(8, seed_key="evict")
        items = [
            (f"q{i}", build_rq1_prompt(q, shots=2), q.truth)
            for i, q in enumerate(questions)
        ]
        model = get_model("gpt-4o-mini")
        unbounded = run_queries(model, items)
        # A bounded store must degrade capacity, never correctness.
        import tempfile

        with tempfile.TemporaryDirectory() as root:
            store = DiskResponseStore(root, max_bytes=1)
            store.DEFERRED_FLUSH_ENTRIES = 4
            engine = EvalEngine(jobs=2, store=store)
            bounded = engine.run(model, items)
            assert bounded.records == unbounded.records
            assert len(store) < len(items)


class TestManifest:
    def test_counts_age_and_models(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        _fill(store, 3, model="model-a")
        keys_b = [f"f{i:01x}{'0' * 62}" for i in range(2)]
        for i, key in enumerate(keys_b):
            store.put(key, _response(i, model="model-b"))
        manifest = store.manifest()
        assert manifest.entries == 5
        assert manifest.total_bytes == store.size_bytes()
        assert manifest.per_model == (("model-a", 3), ("model-b", 2))
        assert manifest.oldest_age_s >= manifest.newest_age_s >= 0.0

    def test_empty_store(self, tmp_path):
        manifest = DiskResponseStore(tmp_path).manifest()
        assert manifest.entries == 0
        assert manifest.oldest_age_s is None
        assert manifest.per_model == ()

    def test_render_lists_models(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        _fill(store, 2, model="o3-mini-high")
        text = store.manifest().render()
        assert "entries:   2" in text
        assert "o3-mini-high: 2" in text

    def test_plain_store_has_no_source_provenance(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        _fill(store, 2)
        manifest = store.manifest()
        assert manifest.per_source == ()
        assert "merged from" not in manifest.render()

    def test_missing_dir_manifest_is_empty_not_an_error(self, tmp_path):
        manifest = DiskResponseStore(tmp_path / "never-created").manifest()
        assert manifest.entries == 0
        assert manifest.per_source == ()

    def test_provenance_counts_only_live_entries(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        keys = _fill(store, 3)
        store.record_provenance({k: "shard-x" for k in keys})
        # Evicted or wiped entry: drop its (single-entry) segment.
        store._segment_path("responses-", keys[0][:2]).unlink()
        manifest = store.manifest()
        assert dict(manifest.per_source) == {"shard-x": 2}
        assert "merged from shard-x: 2" in manifest.render()

    def test_untagged_v1_style_entry_skipped_gracefully(self, tmp_path):
        store = DiskResponseStore(tmp_path)
        _fill(store, 1)
        legacy = tmp_path / "ab" / ("ab" + "0" * 62 + ".json")
        legacy.parent.mkdir(exist_ok=True)
        legacy.write_text(json.dumps({
            "text": "Compute", "input_tokens": 5,
            "output_tokens": 1, "reasoning_tokens": 0,
        }))
        manifest = store.manifest()
        assert manifest.entries == 2
        assert ("", 1) in manifest.per_model


class TestRecordModelTag:
    def test_round_trip_preserves_model(self):
        r = _response(1, model="o1")
        assert CachedResponse.from_dict(r.to_dict()) == r

    def test_engine_tags_entries_with_model(self, tmp_path):
        model = get_model("o3-mini")
        q = generate_rq1_questions(1, seed_key="tag")[0]
        items = [("q0", build_rq1_prompt(q, shots=2), q.truth)]
        store = DiskResponseStore(tmp_path)
        run_queries(model, items, cache=store)
        manifest = store.manifest()
        assert dict(manifest.per_model) == {"o3-mini": 1}

    def test_missing_model_field_defaults_empty(self):
        r = CachedResponse.from_dict({
            "text": "Bandwidth", "input_tokens": 1,
            "output_tokens": 1, "reasoning_tokens": 0,
        })
        assert r.model == ""


class TestEnvDefaults:
    def test_env_bound_parsed(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "12345")
        assert default_cache_max_bytes() == 12345

    @pytest.mark.parametrize("raw", ["", "  "])
    def test_env_bound_blank_means_unbounded(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, raw)
        assert default_cache_max_bytes() is None

    @pytest.mark.parametrize("raw", ["banana", "1GB", "-3"])
    def test_env_bound_warns_on_junk(self, monkeypatch, raw):
        # Junk used to silently mean "unbounded"; it still falls back to
        # unbounded but must say so.
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, raw)
        with pytest.warns(RuntimeWarning, match="size bound"):
            assert default_cache_max_bytes() is None

    def test_env_bound_zero_parses_as_zero(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        assert default_cache_max_bytes() == 0


class TestCacheCli:
    def test_manifest_output(self, capsys, tmp_path):
        store = DiskResponseStore(tmp_path / "c")
        _fill(store, 4, model="gpt-4o-mini")
        assert main(["cache", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries:   4" in out
        assert "gpt-4o-mini: 4" in out

    def test_max_bytes_evicts(self, capsys, tmp_path):
        store = DiskResponseStore(tmp_path / "c")
        _fill(store, 4)
        assert main([
            "cache", "--cache-dir", str(tmp_path / "c"), "--max-bytes", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "evicted 4 segments" in out
        assert len(store) == 0

    def test_wipe_still_works(self, capsys, tmp_path):
        store = DiskResponseStore(tmp_path / "c")
        _fill(store, 2)
        assert main(["cache", "--cache-dir", str(tmp_path / "c"), "--wipe"]) == 0
        assert "wiped 2 entries" in capsys.readouterr().out
        assert len(store) == 0
