"""Async prediction serving: provider adapters, retrying engine, HTTP API.

The bridge from batch reproduction to a traffic-serving system. The
pieces compose bottom-up:

* :mod:`repro.serve.providers` — one async :class:`ProviderClient` face
  over the emulated zoo and OpenAI/Gemini/Anthropic wire shapes, with
  injectable transports (no SDKs, no network required).
* :mod:`repro.serve.retry` — jittered exponential backoff, per-attempt
  deadlines, and an async token-bucket rate limiter.
* :mod:`repro.serve.resilience` — per-provider circuit breakers, the
  latency-tracking hedge trigger, and the load-shedding error taxonomy.
* :mod:`repro.serve.engine` — :class:`AsyncEvalEngine`, the asyncio twin
  of the sync engine: same cache keys, byte-identical results, plus
  in-flight request coalescing, provider failover chains, and hedged
  requests.
* :mod:`repro.serve.http` — the stdlib HTTP front end behind
  ``repro-paper serve``: admission control, request deadlines, graceful
  drain.
"""

from repro.serve.engine import AsyncEvalEngine, ServeStats
from repro.serve.resilience import (
    AllProvidersUnavailable,
    BreakerPolicy,
    CircuitBreaker,
    HedgePolicy,
    LatencyTracker,
    LoadShedError,
)
from repro.serve.http import (
    DEFAULT_MODEL,
    PredictionServer,
    PredictionService,
    ServiceError,
)
from repro.serve.providers import (
    RETRYABLE_ERRORS,
    AnthropicProvider,
    EmulatedProvider,
    GeminiProvider,
    OpenAiProvider,
    ProviderClient,
    ProviderError,
    ProviderNotConfigured,
    ProviderTimeout,
    RateLimitError,
    TransientProviderError,
    emulated_transport,
    provider_family,
    provider_label,
    resolve_provider,
)
from repro.serve.retry import RateLimiter, RetryPolicy, call_with_retry
from repro.util.retry import DeadlineExceeded

__all__ = [
    "AsyncEvalEngine",
    "ServeStats",
    "AllProvidersUnavailable",
    "BreakerPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "LatencyTracker",
    "LoadShedError",
    "DeadlineExceeded",
    "DEFAULT_MODEL",
    "PredictionServer",
    "PredictionService",
    "ServiceError",
    "RETRYABLE_ERRORS",
    "AnthropicProvider",
    "EmulatedProvider",
    "GeminiProvider",
    "OpenAiProvider",
    "ProviderClient",
    "ProviderError",
    "ProviderNotConfigured",
    "ProviderTimeout",
    "RateLimitError",
    "TransientProviderError",
    "emulated_transport",
    "provider_family",
    "provider_label",
    "resolve_provider",
    "RateLimiter",
    "RetryPolicy",
    "call_with_retry",
]
