"""Memory-traffic estimation for the source-level analyst.

Models what a careful human (or reasoning LLM) infers about DRAM traffic
from source text alone: coalescing from the thread-index stride, warp-level
sharing of broadcast loads, register-hoisting of loop-invariant loads, and a
pessimistic full-sector charge for data-dependent gathers. It has *no* cache
capacity model — that is the key dynamic fact the simulator's profiler knows
and source inspection cannot, and it is the dominant source of residual
misclassification for near-balance-point kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clexer import TokKind, lex
from repro.analysis.opcount import RawAccess, TypeEnv

#: Thread-index symbols: vary across threads of a warp/block.
THREAD_SYMS = frozenset({"gx", "lx"})
THREAD_SYMS_Y = frozenset({"gy", "ly"})
SECTOR_BYTES = 32.0
WARP = 32.0


@dataclass(frozen=True)
class AccessEstimate:
    """The analyst's verdict on one access site."""

    array: str
    bytes_per_exec: float
    #: loop variables the address actually varies with (register hoisting)
    varying_loops: tuple[str, ...]
    is_dynamic: bool
    is_write: bool
    is_rmw: bool


def _index_idents(index_text: str) -> list[str]:
    return [t.text for t in lex(index_text) if t.kind is TokKind.IDENT]


def _thread_stride(index_text: str) -> tuple[str, int]:
    """Classify the x-thread-index stride of an index expression.

    Returns ``(kind, stride)`` with kind one of:
    ``"unit"`` (bare gx/lx), ``"const"`` (k * gx, stride k),
    ``"symbolic"`` (ident * gx — row-major style, effectively uncoalesced),
    ``"none"`` (no thread symbol).
    """
    tokens = lex(index_text)
    kind = "none"
    stride = 0
    for i, t in enumerate(tokens):
        if t.kind is not TokKind.IDENT or t.text not in THREAD_SYMS:
            continue
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        neighbor = None
        if prev is not None and prev.kind is TokKind.PUNCT and prev.text == "*":
            neighbor = tokens[i - 2] if i >= 2 else None
        elif nxt is not None and nxt.kind is TokKind.PUNCT and nxt.text == "*":
            neighbor = tokens[i + 2] if i + 2 < len(tokens) else None
        if neighbor is None:
            # bare occurrence — unit stride unless a stronger one was seen
            if kind == "none":
                kind, stride = "unit", 1
        elif neighbor.kind is TokKind.NUMBER:
            k = int(float(neighbor.text.rstrip("fFlLuU")))
            kind, stride = "const", max(1, abs(k))
        else:
            kind, stride = "symbolic", 0
    return kind, stride


def estimate_access(
    access: RawAccess,
    env: TypeEnv,
    loop_vars: tuple[str, ...],
) -> AccessEstimate | None:
    """Estimate one access; returns None for on-chip (shared) accesses."""
    if access.array in env.shared:
        return None
    elem = float(env.elem_size(access.array))
    idents = _index_idents(access.index_text)
    is_dynamic = "%" in access.index_text or "[" in access.index_text or any(
        ident in env.pointers for ident in idents
    )
    varying = tuple(lv for lv in loop_vars if lv in idents)

    if is_dynamic:
        bytes_per_exec = SECTOR_BYTES  # scatter/gather: a sector per access
    else:
        kind, stride = _thread_stride(access.index_text)
        if kind == "unit":
            bytes_per_exec = elem
        elif kind == "const":
            bytes_per_exec = min(SECTOR_BYTES, stride * elem)
        elif kind == "symbolic":
            bytes_per_exec = SECTOR_BYTES
        else:
            # No thread symbol in the index.
            if varying:
                # Broadcast across the warp, new address per iteration.
                bytes_per_exec = elem / WARP
            else:
                # Invariant for the whole kernel: cached after first touch.
                bytes_per_exec = elem / 1024.0
    return AccessEstimate(
        array=access.array,
        bytes_per_exec=bytes_per_exec,
        varying_loops=varying,
        is_dynamic=is_dynamic,
        is_write=access.kind in ("store", "rmw"),
        is_rmw=access.kind == "rmw",
    )
