"""Prompt construction (paper Figures 3 and 4)."""

from repro.prompts.classify import ClassifyPrompt, SYSTEM_HEADER, build_classify_prompt
from repro.prompts.examples import (
    EXAMPLE_VARIANT,
    PSEUDO_EXAMPLES,
    CodeExample,
    real_example_sequence,
    real_examples,
    real_examples_block,
)
from repro.prompts.variants import (
    FEW_SHOT_2,
    MAX_FEW_SHOT,
    NO_HINT,
    PROBLEM_HINT,
    ZERO_SHOT,
    PromptVariant,
    all_variants,
    few_shot_variant,
    get_variant,
    register_variant,
    variant_for_few_shot,
)
from repro.prompts.rq1 import (
    NUM_ROOFLINES,
    SHOT_COUNTS,
    RooflineQuestion,
    build_rq1_prompt,
    generate_question,
    generate_rq1_questions,
)

__all__ = [
    "ClassifyPrompt",
    "SYSTEM_HEADER",
    "build_classify_prompt",
    "PSEUDO_EXAMPLES",
    "EXAMPLE_VARIANT",
    "CodeExample",
    "real_example_sequence",
    "real_examples",
    "real_examples_block",
    "PromptVariant",
    "ZERO_SHOT",
    "FEW_SHOT_2",
    "NO_HINT",
    "PROBLEM_HINT",
    "MAX_FEW_SHOT",
    "all_variants",
    "few_shot_variant",
    "get_variant",
    "register_variant",
    "variant_for_few_shot",
    "RooflineQuestion",
    "build_rq1_prompt",
    "generate_question",
    "generate_rq1_questions",
    "NUM_ROOFLINES",
    "SHOT_COUNTS",
]
