"""CI chaos test: SIGKILL a sweep mid-run, resume, match the control.

End-to-end, across real processes:

1. run a control sweep into its own cache and record the report;
2. run the same grid under a deterministic fault plan that injects
   recoverable provider errors AND SIGKILLs the process after a fixed
   number of completion attempts (``worker_death``), journaling with a
   tight checkpoint interval — the run dies mid-sweep, repeatedly;
3. resume with ``--resume`` until the sweep completes, asserting every
   crash was the injected SIGKILL and every journaled unit is served as
   a cache hit (zero re-issued completions for journaled units);
4. assert the final resumed report is byte-identical to the control's;
5. separately, corrupt a store via segment-fault injection and assert
   ``repro-paper doctor --dry-run`` detects it (exit 1), ``doctor``
   repairs it (exit 0), and a second dry run comes back healthy.

Exits non-zero with a diagnostic on any violation.

Run:  PYTHONPATH=src python scripts/chaos_smoke.py [--limit N]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

MODEL = "o3-mini-high"
CLI = [sys.executable, "-m", "repro.cli"]
CHAOS_PLAN = "seed=1;provider_error:rate=0.3,attempts=1;worker_death:after=5"
MAX_RESUMES = 25


def fail(message: str) -> None:
    raise SystemExit(f"chaos smoke FAILED: {message}")


def run_cli(args: list[str], env: dict) -> subprocess.CompletedProcess:
    return subprocess.run(
        [*CLI, *args], capture_output=True, text=True, timeout=900, env=env
    )


def report_of(stdout: str) -> str:
    """The report body — everything except the run-local cache line."""
    return "\n".join(
        line for line in stdout.splitlines() if not line.startswith("cache:")
    )


def journal_len(cache_dir: Path) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.eval.journal import DEFAULT_JOURNAL_NAME, SweepJournal

    path = cache_dir / DEFAULT_JOURNAL_NAME
    return len(SweepJournal(path)) if path.is_file() else 0


def sweep_args(cache_dir: Path, limit: int) -> list[str]:
    return [
        "sweep", "--gpus", "v100", "--rq", "rq2", "--model", MODEL,
        "--limit", str(limit), "--cache-dir", str(cache_dir),
    ]


def chaos_resume_cycle(work: Path, env: dict, limit: int) -> None:
    control = run_cli(sweep_args(work / "control-cache", limit), env)
    if control.returncode != 0:
        fail(f"control sweep rc={control.returncode}:\n{control.stderr}")
    if "Hardware matrix" not in control.stdout:
        fail("control sweep printed no matrix report")

    chaos_cache = work / "chaos-cache"
    crashes = 0
    final = None
    for attempt in range(MAX_RESUMES):
        journaled_before = journal_len(chaos_cache)
        proc = run_cli(
            [*sweep_args(chaos_cache, limit), "--resume",
             "--inject-faults", CHAOS_PLAN],
            {**env, "REPRO_JOURNAL_INTERVAL": "2"},
        )
        if proc.returncode == -signal.SIGKILL:
            crashes += 1
            after = journal_len(chaos_cache)
            if after < journaled_before:
                fail(f"journal shrank across a crash: {journaled_before} -> {after}")
            print(f"  crash {crashes}: SIGKILL mid-sweep, "
                  f"{after} unit(s) journaled", flush=True)
            continue
        if proc.returncode != 0:
            fail(f"chaos sweep rc={proc.returncode} (wanted 0 or SIGKILL):\n"
                 f"{proc.stdout}\n{proc.stderr}")
        stats = re.search(r"cache: (\d+) hits, (\d+) misses", proc.stdout)
        if not stats:
            fail(f"no cache summary in:\n{proc.stdout}")
        hits = int(stats.group(1))
        if hits < journaled_before:
            fail(f"journaled units were re-issued: {journaled_before} "
                 f"journaled but only {hits} hits")
        final = proc
        break
    else:
        fail(f"sweep never completed within {MAX_RESUMES} resumes")

    if crashes == 0:
        fail("the fault plan never killed the sweep — nothing was tested")
    if report_of(final.stdout) != report_of(control.stdout):
        fail("resumed report differs from control:\n"
             f"--- control ---\n{control.stdout}\n"
             f"--- resumed ---\n{final.stdout}")
    print(f"chaos sweep survived {crashes} SIGKILLs; "
          "resumed report is byte-identical to control", flush=True)


def doctor_cycle(work: Path, env: dict) -> None:
    doc_cache = work / "doctor-cache"
    seeded = run_cli(
        ["rq2", "--model", MODEL, "--limit", "6",
         "--cache-dir", str(doc_cache),
         "--inject-faults", "seed=3;torn_write:rate=1;stale_tmp:rate=1"],
        env,
    )
    if seeded.returncode != 0:
        fail(f"fault-seeded run rc={seeded.returncode}:\n{seeded.stderr}")

    flags = ["--cache-dir", str(doc_cache),
             "--profile-cache", str(work / "doctor-profiles"),
             "--artifact-cache", str(work / "doctor-artifacts")]
    dry = run_cli(["doctor", "--dry-run", *flags], env)
    if dry.returncode != 1:
        fail(f"doctor --dry-run rc={dry.returncode} (wanted 1):\n{dry.stdout}")
    for kind in ("torn_write", "stale_tmp"):
        if kind not in dry.stdout:
            fail(f"doctor --dry-run missed {kind}:\n{dry.stdout}")

    repair = run_cli(["doctor", *flags], env)
    if repair.returncode != 0 or "repaired" not in repair.stdout:
        fail(f"doctor repair rc={repair.returncode}:\n{repair.stdout}")

    clean = run_cli(["doctor", "--dry-run", *flags], env)
    if clean.returncode != 0:
        fail(f"store still sick after repair:\n{clean.stdout}")
    print("doctor detected, repaired, and re-verified the injected damage",
          flush=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--limit", type=int, default=12,
                        help="kernels per device in the chaos grid")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    opts = parser.parse_args()

    work = Path(opts.workdir or tempfile.mkdtemp(prefix="chaos-smoke-"))
    work.mkdir(parents=True, exist_ok=True)
    env = {
        **os.environ,
        "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
    }
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_CACHE_DIR", None)

    chaos_resume_cycle(work, env, opts.limit)
    doctor_cycle(work, env)
    print("chaos smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
