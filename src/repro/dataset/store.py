"""JSON persistence for datasets.

Stores samples as JSON-lines: one record per line, deterministic key order.
Sources are stored by default (self-contained file); ``include_source=False``
writes a compact index that can be rehydrated against the generated corpus.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dataset.records import Sample


def save_samples(
    samples: list[Sample], path: str | Path, *, include_source: bool = True
) -> None:
    """Write samples as JSON-lines."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        for s in samples:
            fh.write(json.dumps(s.to_dict(include_source=include_source), sort_keys=True))
            fh.write("\n")


def load_samples(path: str | Path, *, rehydrate_source: bool = False) -> list[Sample]:
    """Read samples from JSON-lines; optionally re-render missing sources."""
    p = Path(path)
    out: list[Sample] = []
    with p.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(Sample.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as e:
                raise ValueError(f"{p}:{line_no}: malformed sample record: {e}") from e
    if rehydrate_source and any(not s.source for s in out):
        out = _rehydrate(out)
    return out


def _rehydrate(samples: list[Sample]) -> list[Sample]:
    import dataclasses

    from repro.kernels.codegen import render_program
    from repro.kernels.corpus import default_corpus

    corpus = default_corpus()
    by_uid = {p.uid: p for p in corpus.programs}
    fixed = []
    for s in samples:
        if s.source:
            fixed.append(s)
            continue
        prog = by_uid.get(s.uid)
        if prog is None:
            raise KeyError(f"cannot rehydrate {s.uid}: not in default corpus")
        text = render_program(prog).concatenated_source()
        fixed.append(dataclasses.replace(s, source=text))
    return fixed
