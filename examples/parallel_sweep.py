"""Parallel, cached evaluation sweeps with ``repro.eval.engine``.

Runs a Table 1 slice three ways — the plain sequential path, a cold
parallel engine, and a warm-cache replay — and shows that every run
produces identical metrics while the warm replay issues zero new model
completions. Equivalent CLI: ``repro-paper table1 --jobs 8`` (run it twice
and watch the cache line).

Run:  python examples/parallel_sweep.py
"""

import time

from repro.dataset import paper_dataset
from repro.eval.engine import DiskResponseStore, EvalEngine, MemoryResponseStore
from repro.eval.table1 import build_table1
from repro.llm import get_model

MODELS = ("o3-mini-high", "gemini-2.0-flash-001", "gpt-4o-mini")
SLICE = 80  # samples; the full paper run uses all 340
ROOFLINES = 40


def sweep(label, engine=None):
    models = [get_model(n) for n in MODELS]
    # jobs=0 in the CLI means "all cores"; here the engine carries it.
    t0 = time.perf_counter()
    table = build_table1(
        samples, models=models, num_rooflines=ROOFLINES, engine=engine
    )
    elapsed = time.perf_counter() - t0
    stats = f"  [{engine.stats.summary()}]" if engine else ""
    print(f"{label:24s} {elapsed:6.2f}s{stats}")
    return table


ds = paper_dataset(jobs=0)  # profiling pass fans out over all cores
samples = list(ds.balanced)[:SLICE]

print(f"Table 1 slice: {len(MODELS)} models x {SLICE} samples "
      f"x {ROOFLINES} rooflines\n")

sequential = sweep("sequential (no engine)")

# One shared in-memory store: the first engine run fills it, the second
# replays it without a single new completion.
store = MemoryResponseStore()
cold = sweep("parallel cold (jobs=8)", EvalEngine(jobs=8, store=store))
warm = sweep("parallel warm replay", EvalEngine(jobs=8, store=store))

assert cold.render() == sequential.render()
assert warm.render() == sequential.render()
print("\nall three sweeps produced identical tables\n")

# A disk store does the same across *processes*: run this script twice and
# the second run starts warm. Wipe it with `repro-paper cache --wipe`.
disk = DiskResponseStore(".repro-cache")
engine = EvalEngine(jobs=8, store=disk)
sweep("disk-cached run", engine)
print(f"\ndisk cache now holds {len(disk)} responses "
      f"({disk.size_bytes()} bytes) in {disk.root}/")

print()
print(warm.render())
