"""Human-readable explanation of a static roofline classification.

Produces the argument a careful analyst would write down: per-class
arithmetic intensities against their balance points, the dominant traffic
contributors, and the caveats (guessed trip counts, data-dependent accesses)
that bound confidence. Used by the ``explain_kernel`` example and handy for
debugging why the deep emulator path decided what it decided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.intensity import (
    StaticEstimate,
    analyze_kernel_detailed,
    classify_static,
)
from repro.analysis.kernelfind import KernelSource
from repro.types import Boundedness, OpClass


@dataclass(frozen=True)
class Explanation:
    """A structured justification for one static verdict."""

    kernel_name: str
    estimate: StaticEstimate
    verdict: Boundedness
    #: op class → (estimated AI, balance point, verdict contribution)
    per_class: Mapping[OpClass, tuple[float, float, Boundedness]]
    #: top traffic contributors: (array, kind, index text, bytes, share)
    traffic: tuple[tuple[str, str, str, float, float], ...]

    def render(self) -> str:
        est = self.estimate
        lines = [
            f"kernel {self.kernel_name}: {self.verdict.word}-bound "
            f"(static estimate)",
            "",
            f"per-thread work: {est.ops_sp:.4g} SP + {est.ops_dp:.4g} DP + "
            f"{est.ops_int:.4g} INT ops over {est.bytes_per_thread:.4g} bytes",
            "",
            "class verdicts (AI vs balance point):",
        ]
        for op_class, (ai, bp, label) in self.per_class.items():
            rel = "≥" if label is Boundedness.COMPUTE else "<"
            lines.append(
                f"  {op_class.display:8s} AI {ai:10.4g} {rel} {bp:8.4g}  "
                f"→ {label.word}"
            )
        lines.append("")
        lines.append("dominant traffic contributors:")
        for array, kind, index, byts, share in self.traffic:
            lines.append(
                f"  {array}[{index}] ({kind}): {byts:.4g} B/thread "
                f"({share * 100:.0f}%)"
            )
        caveats = []
        if est.unresolved_bounds:
            caveats.append(
                f"{est.unresolved_bounds} loop bound(s) guessed (not in argv)"
            )
        if est.dynamic_accesses:
            caveats.append(
                f"{est.dynamic_accesses} data-dependent access(es) charged a "
                "full sector"
            )
        if est.branch_sites:
            caveats.append(
                f"{est.branch_sites} branch(es) assumed 50% taken"
            )
        caveats.append("no cache-capacity model: re-reads of large working "
                       "sets are under-charged")
        lines.append("")
        lines.append("caveats:")
        lines.extend(f"  - {c}" for c in caveats)
        lines.append(f"  (guess fraction: {est.guess_fraction:.2f})")
        return "\n".join(lines)


def explain_kernel(
    kernel: KernelSource,
    balance_points: Mapping[OpClass, float],
    *,
    param_values: Mapping[str, int] | None = None,
    top_traffic: int = 5,
) -> Explanation:
    """Run the static pipeline and assemble its justification."""
    estimate, sites = analyze_kernel_detailed(
        kernel, param_values=param_values
    )
    verdict = classify_static(estimate, balance_points)
    per_class = {}
    for op_class in OpClass:
        ai = estimate.intensity(op_class)
        bp = balance_points[op_class]
        label = (
            Boundedness.COMPUTE if ai >= bp else Boundedness.BANDWIDTH
        )
        per_class[op_class] = (ai, bp, label)

    total = sum(b for *_, b in sites) or 1.0
    merged: dict[tuple[str, str, str], float] = {}
    for array, kind, index, byts in sites:
        key = (array, kind, index)
        merged[key] = merged.get(key, 0.0) + byts
    ranked = sorted(merged.items(), key=lambda kv: -kv[1])[:top_traffic]
    traffic = tuple(
        (array, kind, index, byts, byts / total)
        for (array, kind, index), byts in ranked
    )
    return Explanation(
        kernel_name=kernel.name,
        estimate=estimate,
        verdict=verdict,
        per_class=per_class,
        traffic=traffic,
    )
