"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["rq2"])
        assert args.model == "all"
        assert args.limit == 0


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "o3-mini-high" in out
        assert "$15 / $60" in out

    def test_dataset(self, capsys, dataset):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "balanced: 340" in out

    def test_dataset_save(self, capsys, tmp_path, dataset):
        out_file = tmp_path / "ds.jsonl"
        assert main(["dataset", "--out", str(out_file), "--compact"]) == 0
        assert out_file.exists()
        assert out_file.stat().st_size > 10_000

    def test_classify_known_uid(self, capsys, dataset):
        uid = dataset.balanced[0].uid
        rc = main(["classify", uid, "--model", "o3-mini-high"])
        out = capsys.readouterr().out
        assert rc in (0, 1)  # 0 correct, 1 incorrect — both valid runs
        assert f"program:    {uid}" in out
        assert "prediction:" in out

    def test_classify_unknown_uid(self, capsys, dataset):
        assert main(["classify", "cuda/zzz-v99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_rq1_single_model(self, capsys):
        assert main(["rq1", "--model", "gpt-4o-mini", "--rooflines", "20"]) == 0
        out = capsys.readouterr().out
        assert "gpt-4o-mini" in out

    def test_rq2_with_limit(self, capsys, dataset):
        assert main(["rq2", "--model", "o3-mini", "--limit", "15"]) == 0
        out = capsys.readouterr().out
        assert "15 samples" in out

    def test_rq3_with_limit(self, capsys, dataset):
        assert main(["rq3", "--model", "gpt-4o-mini", "--limit", "10"]) == 0
        assert "two-shot" in capsys.readouterr().out

    def test_rq4(self, capsys, dataset):
        assert main(["rq4", "--scope", "all"]) == 0
        out = capsys.readouterr().out
        assert "collapsed:          True" in out

    def test_decompose_with_limit(self, capsys, dataset):
        assert main(["decompose", "--model", "o3-mini", "--limit", "10"]) == 0
        assert "Decomposed" in capsys.readouterr().out

    def test_figures(self, capsys, dataset):
        assert main(["figures", "--which", "2"]) == 0
        assert "train/CUDA/BB" in capsys.readouterr().out

    def test_matrix_two_gpus(self, capsys, dataset):
        assert main([
            "matrix", "--model", "o3-mini", "--gpus", "v100,h100",
            "--limit", "12", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Hardware matrix" in out
        assert "V100" in out and "H100" in out

    def test_matrix_process_backend(self, capsys, dataset):
        assert main([
            "matrix", "--model", "gpt-4o-mini", "--gpus", "rtx 3080",
            "--limit", "8", "--jobs", "2", "--backend", "process",
        ]) == 0
        assert "RTX 3080" in capsys.readouterr().out

    def test_matrix_unknown_gpu(self, capsys, dataset):
        assert main(["matrix", "--gpus", "tpu-v5", "--limit", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_backend_flag_on_rq_commands(self, capsys, dataset):
        assert main([
            "rq2", "--model", "o3-mini", "--limit", "8",
            "--backend", "sequential",
        ]) == 0
        assert "8 samples" in capsys.readouterr().out


class TestShardedSweepCli:
    def test_sweep_defaults_to_whole_grid(self):
        args = build_parser().parse_args(["sweep"])
        assert args.shard == "0/1"
        assert args.gpus == "all"

    def test_sweep_unsharded_prints_matrix_report(self, capsys, dataset):
        assert main([
            "sweep", "--model", "o3-mini", "--gpus", "v100", "--limit", "6",
            "--no-cache",
        ]) == 0
        assert "Hardware matrix" in capsys.readouterr().out

    def test_sweep_bad_shard_spec(self, capsys):
        assert main(["sweep", "--shard", "3/3", "--limit", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_sharded_requires_cache(self, capsys):
        assert main([
            "sweep", "--shard", "0/2", "--limit", "4", "--no-cache",
        ]) == 2
        assert "cache" in capsys.readouterr().err

    def test_shard_merge_replay_round_trip(self, capsys, tmp_path, dataset):
        grid = ["--model", "o3-mini-high", "--gpus", "v100", "--rq", "rq2",
                "--limit", "6"]
        for i in range(2):
            assert main([
                "sweep", *grid, "--shard", f"{i}/2",
                "--cache-dir", str(tmp_path / f"shard-{i}"),
            ]) == 0
            assert f"Shard {i}/2" in capsys.readouterr().out
        assert main([
            "merge-caches", str(tmp_path / "shard-0"),
            str(tmp_path / "shard-1"), "--into", str(tmp_path / "merged"),
            "--report", *grid,
        ]) == 0
        out = capsys.readouterr().out
        assert "merged into" in out
        assert "merged from" in out
        assert "Hardware matrix" in out
        assert "6 hits, 0 misses, 0 new completions" in out

    def test_merge_report_respects_size_bound(self, capsys, tmp_path, dataset):
        from repro.eval.engine import DiskResponseStore

        grid = ["--model", "o3-mini-high", "--gpus", "v100", "--rq", "rq2",
                "--limit", "4"]
        for i in range(2):
            assert main([
                "sweep", *grid, "--shard", f"{i}/2",
                "--cache-dir", str(tmp_path / f"shard-{i}"),
            ]) == 0
        capsys.readouterr()
        store = DiskResponseStore(tmp_path / "shard-0")
        bound = (store.size_bytes() // 2) * 2  # room for ~2 of 4 entries
        assert main([
            "merge-caches", str(tmp_path / "shard-0"),
            str(tmp_path / "shard-1"), "--into", str(tmp_path / "merged"),
            "--cache-max-bytes", str(bound), "--report", *grid,
        ]) == 0
        assert "Hardware matrix" in capsys.readouterr().out
        # The replay recomputes what eviction dropped, but the command must
        # leave the store within the requested bound.
        merged = DiskResponseStore(tmp_path / "merged")
        assert merged.size_bytes() <= bound

    def test_merge_conflict_exits_nonzero(self, capsys, tmp_path):
        from repro.eval.engine import CachedResponse, DiskResponseStore

        key = "ab" + "0" * 62
        for name, text in (("a", "Compute"), ("b", "Bandwidth")):
            store = DiskResponseStore(tmp_path / name)
            store.put(key, CachedResponse(
                text=text, input_tokens=1, output_tokens=1,
                reasoning_tokens=0, model="m",
            ))
        assert main([
            "merge-caches", str(tmp_path / "a"), str(tmp_path / "b"),
            "--into", str(tmp_path / "merged"),
        ]) == 1
        assert "merge conflict" in capsys.readouterr().err

    def test_cache_tolerates_missing_dir(self, capsys, tmp_path):
        assert main([
            "cache", "--cache-dir", str(tmp_path / "never-created"),
        ]) == 0
        out = capsys.readouterr().out
        assert "missing; treated as empty" in out
        assert "entries:   0" in out

    def test_cache_wipe_tolerates_missing_dir(self, capsys, tmp_path):
        assert main([
            "cache", "--cache-dir", str(tmp_path / "nope"), "--wipe",
        ]) == 0
        assert "missing; treated as empty" in capsys.readouterr().out


class TestFaultFlags:
    def test_unknown_backend_exits_2_listing_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["rq2", "--backend", "bogus"])
        assert excinfo.value.code == 2
        assert "thread" in capsys.readouterr().err

    def test_unknown_failure_mode_exits_2_listing_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["rq2", "--failure-mode", "explode"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fail_fast" in err and "collect" in err

    def test_bad_fault_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["rq2", "--model", "gpt-4o-mini", "--limit", "1",
                  "--inject-faults", "seed=x"])
        assert excinfo.value.code == 2
        assert "--inject-faults" in capsys.readouterr().err

    def test_unknown_fault_kind_lists_valid_kinds(self, capsys):
        with pytest.raises(SystemExit):
            main(["rq2", "--model", "gpt-4o-mini", "--limit", "1",
                  "--inject-faults", "frobnicate:rate=1"])
        assert "provider_error" in capsys.readouterr().err

    def test_resume_requires_the_cache(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["rq2", "--model", "gpt-4o-mini", "--limit", "1",
                  "--no-cache", "--resume"])
        assert excinfo.value.code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_collect_mode_reports_failed_units(self, capsys, dataset):
        assert main([
            "rq2", "--model", "gpt-4o-mini", "--limit", "16",
            "--failure-mode", "collect",
            "--inject-faults", "seed=11;provider_error:rate=0.3,attempts=99",
        ]) == 0
        out = capsys.readouterr().out
        assert " failed" in out  # the cache summary books the failures

    def test_resume_journals_and_skips(self, capsys, tmp_path, dataset):
        argv = ["rq2", "--model", "gpt-4o-mini", "--limit", "3",
                "--cache-dir", str(tmp_path / "c"), "--resume"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "3 misses" in first
        assert main(argv) == 0
        again = capsys.readouterr().out
        assert "3 hits, 0 misses" in again
        assert (tmp_path / "c" / "sweep-journal.jsonl").is_file()


class TestDoctorCommand:
    def test_missing_stores_are_healthy(self, capsys, tmp_path):
        assert main([
            "doctor",
            "--cache-dir", str(tmp_path / "a"),
            "--profile-cache", str(tmp_path / "b"),
            "--artifact-cache", str(tmp_path / "c"),
        ]) == 0
        assert "nothing to check" in capsys.readouterr().out

    def test_dry_run_detects_then_repair_heals(self, capsys, tmp_path):
        from repro.eval.engine import CachedResponse, DiskResponseStore

        store = DiskResponseStore(tmp_path / "c")
        store.put("ab" + "0" * 62, CachedResponse(
            text="Compute", input_tokens=1, output_tokens=1,
            reasoning_tokens=0, model="m",
        ))
        seg = store._segment_path("responses-", "ab")
        seg.write_bytes(seg.read_bytes()[:-3])
        flags = ["--cache-dir", str(tmp_path / "c"),
                 "--profile-cache", str(tmp_path / "p"),
                 "--artifact-cache", str(tmp_path / "a")]

        assert main(["doctor", "--dry-run", *flags]) == 1
        out = capsys.readouterr().out
        assert "torn_write" in out
        assert seg.exists()  # dry run never modifies

        assert main(["doctor", *flags]) == 0
        assert "repaired" in capsys.readouterr().out
        assert not seg.exists()
        assert (tmp_path / "c" / "quarantine" / seg.name).exists()

        assert main(["doctor", "--dry-run", *flags]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_cache_command_surfaces_journal_and_doctor_hint(
        self, capsys, tmp_path
    ):
        from repro.eval.engine import CachedResponse, DiskResponseStore
        from repro.eval.journal import SweepJournal

        store = DiskResponseStore(tmp_path / "c")
        store.put("ab" + "0" * 62, CachedResponse(
            text="Compute", input_tokens=1, output_tokens=1,
            reasoning_tokens=0, model="m",
        ))
        journal = SweepJournal(
            tmp_path / "c" / "sweep-journal.jsonl", label="sweep"
        )
        journal.record("m:item", "ab" + "0" * 62)
        journal.checkpoint()
        seg = store._segment_path("responses-", "ab")
        seg.write_bytes(seg.read_bytes()[:-3])

        assert main(["cache", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "journal:   1 journaled unit(s)" in out
        assert "1 torn_write" in out
        assert "repro-paper doctor" in out
