"""Mixed-behaviour families: ML layers, convolutions, statistics, graph and
sparse kernels. Several of these pivot between BB and CB depending on
precision, window size, and cache residency — the richest source of cases
where source-level reasoning about boundedness is genuinely subtle."""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import assemble, draw_size_1d, variant_rng
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    BinOp,
    BinOpKind,
    Call,
    CallFn,
    Cast,
    Const,
    DType,
    DynamicIndex,
    For,
    If,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Select,
    Store,
    Var,
    add,
    aff,
    call,
    div,
    fma,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language

I32 = DType.I32


def _dt(variant: int) -> DType:
    return DType.F64 if variant in (0, 1, 4) else DType.F32


def _c(v: float, dt: DType) -> Const:
    return Const(v, dt)


@family("softmax_rows", "misc", tendency="mixed")
def build_softmax(variant: int, language: Language):
    rng = variant_rng("softmax_rows", variant, language)
    dt = _dt(variant)
    rows = int(rng.choice([1 << 14, 1 << 15, 1 << 16]))
    cols = int(rng.choice([64, 128, 256]))
    body = (
        Let("mx", load("logits", aff(("gx", "cols")), dt), dt),
        For(
            "j", "cols",
            (
                Assign(
                    "mx",
                    BinOp(BinOpKind.MAX, var("mx", dt),
                          load("logits", aff(("gx", "cols"), "j"), dt), dt),
                    dt,
                ),
            ),
        ),
        Let("denom", mul(_c(0.0, dt), var("mx", dt), dt), dt),
        For(
            "j", "cols",
            (
                Assign(
                    "denom",
                    add(var("denom", dt),
                        call(CallFn.EXP,
                             sub(load("logits", aff(("gx", "cols"), "j"), dt),
                                 var("mx", dt), dt), dtype=dt), dt),
                    dt,
                ),
            ),
        ),
        For(
            "j", "cols",
            (
                Store(
                    "probs", aff(("gx", "cols"), "j"),
                    div(
                        call(CallFn.EXP,
                             sub(load("logits", aff(("gx", "cols"), "j"), dt),
                                 var("mx", dt), dt), dtype=dt),
                        var("denom", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
    )
    kernel = Kernel(
        name="softmax_rows_kernel",
        arrays=(
            ArrayDecl("logits", dt, "rows*cols"),
            ArrayDecl("probs", dt, "rows*cols", is_output=True),
        ),
        params=(ScalarParam("cols", I32), ScalarParam("rows", I32)),
        body=body,
        work_items="rows",
    )
    return assemble(
        family="softmax_rows", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"rows": rows, "cols": cols},
        binding_exprs={"cols": "cols", "rows": "rows"},
        description="row-wise numerically-stable softmax",
    )


@family("layernorm_rows", "misc", tendency="mixed")
def build_layernorm(variant: int, language: Language):
    rng = variant_rng("layernorm_rows", variant, language)
    dt = _dt(variant)
    rows = int(rng.choice([1 << 14, 1 << 15, 1 << 16]))
    cols = int(rng.choice([64, 128, 256]))
    body = (
        Let("mean", mul(_c(0.0, dt), var("inv_cols", dt), dt), dt),
        For(
            "j", "cols",
            (Assign("mean", add(var("mean", dt),
                                load("x", aff(("gx", "cols"), "j"), dt), dt), dt),),
        ),
        Assign("mean", mul(var("mean", dt), var("inv_cols", dt), dt), dt),
        Let("varacc", mul(_c(0.0, dt), var("mean", dt), dt), dt),
        For(
            "j", "cols",
            (
                Let("d", sub(load("x", aff(("gx", "cols"), "j"), dt), var("mean", dt), dt), dt),
                Assign("varacc", fma(var("d", dt), var("d", dt), var("varacc", dt), dt), dt),
            ),
        ),
        Let(
            "inv_std",
            call(CallFn.RSQRT,
                 fma(var("varacc", dt), var("inv_cols", dt), var("eps", dt), dt),
                 dtype=dt),
            dt,
        ),
        For(
            "j", "cols",
            (
                Store(
                    "y", aff(("gx", "cols"), "j"),
                    mul(sub(load("x", aff(("gx", "cols"), "j"), dt), var("mean", dt), dt),
                        var("inv_std", dt), dt),
                    dt,
                ),
            ),
        ),
    )
    kernel = Kernel(
        name="layernorm_rows_kernel",
        arrays=(
            ArrayDecl("x", dt, "rows*cols"),
            ArrayDecl("y", dt, "rows*cols", is_output=True),
        ),
        params=(
            ScalarParam("inv_cols", dt),
            ScalarParam("eps", dt),
            ScalarParam("cols", I32),
            ScalarParam("rows", I32),
        ),
        body=body,
        work_items="rows",
    )
    return assemble(
        family="layernorm_rows", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"rows": rows, "cols": cols},
        binding_exprs={"inv_cols": 1, "eps": 1, "cols": "cols", "rows": "rows"},
        description="row-wise layer normalization",
    )


@family("batchnorm_infer", "misc", tendency="bb")
def build_batchnorm(variant: int, language: Language):
    rng = variant_rng("batchnorm_infer", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    channels = int(rng.choice([32, 64, 128]))
    ch = BinOp(BinOpKind.MOD, Var("gx", I32), Var("channels", I32), I32)
    body = (
        Let("c_idx", ch, I32),
        Let("g_val", Load("gamma", DynamicIndex(expr=Var("c_idx", I32),
                                                range_hint="channels",
                                                pattern="local"), dt), dt),
        Let("b_val", Load("beta", DynamicIndex(expr=Var("c_idx", I32),
                                               range_hint="channels",
                                               pattern="local"), dt), dt),
        Store(
            "y", aff("gx"),
            fma(load("x", aff("gx"), dt), var("g_val", dt), var("b_val", dt), dt),
            dt,
        ),
    )
    kernel = Kernel(
        name="batchnorm_inference_kernel",
        arrays=(
            ArrayDecl("x", dt, "n"),
            ArrayDecl("gamma", dt, "channels"),
            ArrayDecl("beta", dt, "channels"),
            ArrayDecl("y", dt, "n", is_output=True),
        ),
        params=(ScalarParam("channels", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="batchnorm_infer", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "channels": channels},
        binding_exprs={"channels": "channels", "n": "n"},
        description="batch-norm inference scale-and-shift",
    )


@family("conv1d_taps", "misc", tendency="mixed")
def build_conv1d(variant: int, language: Language):
    rng = variant_rng("conv1d_taps", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    taps = int(rng.choice([9, 17, 33]))
    body = (
        Let("acc", mul(_c(0.0, dt), load("signal", aff("gx"), dt), dt), dt),
        For(
            "t", "taps",
            (
                Assign(
                    "acc",
                    fma(
                        load("signal", aff("gx", "t"), dt),
                        load("weights", aff("t"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("filtered", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="fir_filter_kernel",
        arrays=(
            ArrayDecl("signal", dt, "m"),
            ArrayDecl("weights", dt, "taps"),
            ArrayDecl("filtered", dt, "n", is_output=True),
        ),
        params=(ScalarParam("taps", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="conv1d_taps", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "taps": taps, "m": n + taps},
        binding_exprs={"taps": "taps", "n": "n"},
        description=f"{taps}-tap FIR convolution",
    )


@family("conv2d_3x3", "misc", tendency="mixed")
def build_conv2d(variant: int, language: Language):
    rng = variant_rng("conv2d_3x3", variant, language)
    dt = _dt(variant)
    side = int(rng.choice([512, 768, 1024, 1536] if dt is DType.F32 else [384, 512, 640]))
    acc = mul(_c(0.0, dt), load("img", aff(("gy", "nx"), "gx"), dt), dt)
    k = 0
    for row in (-1, 0, 1):
        for off in (-1, 0, 1):
            terms: list = [("gy", "nx"), ("gx", 1)]
            if row:
                terms.append(("nx", row))
            acc = add(
                acc,
                mul(load("img", aff(*terms, const=off), dt),
                    load("kern", aff(const=k), dt), dt),
                dt,
            )
            k += 1
    gx = Var("gx", I32)
    gy = Var("gy", I32)
    one = Const(1, I32)
    cond = BinOp(
        BinOpKind.LAND,
        BinOp(
            BinOpKind.LAND,
            BinOp(BinOpKind.GT, gx, Const(0, I32), I32),
            BinOp(BinOpKind.LT, gx, sub(Var("nx", I32), one, I32), I32),
            I32,
        ),
        BinOp(
            BinOpKind.LAND,
            BinOp(BinOpKind.GT, gy, Const(0, I32), I32),
            BinOp(BinOpKind.LT, gy, sub(Var("ny", I32), one, I32), I32),
            I32,
        ),
        I32,
    )
    taken = ((side - 2) ** 2) / float(side * side)
    body = (
        If(cond=cond, then=(Store("out", aff(("gy", "nx"), "gx"), acc, dt),),
           taken_fraction=taken),
    )
    kernel = Kernel(
        name="conv2d_3x3_kernel",
        arrays=(
            ArrayDecl("img", dt, "nx*ny"),
            ArrayDecl("kern", dt, 9),
            ArrayDecl("out", dt, "nx*ny", is_output=True),
        ),
        params=(ScalarParam("nx", I32), ScalarParam("ny", I32)),
        body=body,
        work_items="nx",
        work_items_y="ny",
    )
    return assemble(
        family="conv2d_3x3", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"nx": side, "ny": side},
        binding_exprs={"nx": "nx", "ny": "ny"},
        description="3x3 image convolution", block2d=(16, 16),
    )


@family("correlate_lags", "misc", tendency="cb")
def build_correlate(variant: int, language: Language):
    rng = variant_rng("correlate_lags", variant, language)
    dt = _dt(variant)
    lags = int(rng.choice([1 << 13, 1 << 14, 1 << 15]))
    window = int(rng.choice([512, 1024, 2048]))
    body = (
        Let("acc", mul(_c(0.0, dt), load("sig", aff("gx"), dt), dt), dt),
        For(
            "k", "window",
            (
                Assign(
                    "acc",
                    fma(
                        load("sig", aff("k"), dt),
                        load("sig", aff("gx", "k"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("corr", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="autocorrelation_kernel",
        arrays=(
            ArrayDecl("sig", dt, "m"),
            ArrayDecl("corr", dt, "lags", is_output=True),
        ),
        params=(ScalarParam("window", I32), ScalarParam("lags", I32)),
        body=body,
        work_items="lags",
    )
    return assemble(
        family="correlate_lags", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"lags": lags, "window": window, "m": lags + window},
        binding_exprs={"window": "window", "lags": "lags"},
        description="autocorrelation at one lag per thread",
    )


@family("covariance_cols", "misc", tendency="cb")
def build_covariance(variant: int, language: Language):
    rng = variant_rng("covariance_cols", variant, language)
    dt = _dt(variant)
    dims = int(rng.choice([128, 192, 256]))
    samples = int(rng.choice([2048, 4096, 8192]))
    body = (
        Let("acc", mul(_c(0.0, dt), var("inv_n", dt), dt), dt),
        For(
            "s", "samples",
            (
                Assign(
                    "acc",
                    fma(
                        load("data", aff(("s", "dims"), "gx"), dt),
                        load("data", aff(("s", "dims"), "gy"), dt),
                        var("acc", dt),
                        dt,
                    ),
                    dt,
                ),
            ),
        ),
        Store("cov", aff(("gy", "dims"), "gx"),
              mul(var("acc", dt), var("inv_n", dt), dt), dt),
    )
    kernel = Kernel(
        name="covariance_kernel",
        arrays=(
            ArrayDecl("data", dt, "samples*dims"),
            ArrayDecl("cov", dt, "dims*dims", is_output=True),
        ),
        params=(
            ScalarParam("inv_n", dt),
            ScalarParam("samples", I32),
            ScalarParam("dims", I32),
        ),
        body=body,
        work_items="dims",
        work_items_y="dims",
    )
    return assemble(
        family="covariance_cols", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"dims": dims, "samples": samples},
        binding_exprs={"inv_n": 1, "samples": "samples", "dims": "dims"},
        description="covariance matrix entry per thread", block2d=(16, 16),
    )


@family("knn_dist", "misc", tendency="cb")
def build_knn(variant: int, language: Language):
    rng = variant_rng("knn_dist", variant, language)
    dt = _dt(variant)
    queries = int(rng.choice([1 << 15, 1 << 16, 1 << 17]))
    refs = int(rng.choice([1024, 2048, 4096]))
    body = (
        Let("qx", load("qpts", aff(("gx", 2)), dt), dt),
        Let("qy", load("qpts", aff(("gx", 2), const=1), dt), dt),
        Let("best", _c(1e30, dt), dt),
        For(
            "r", "refs",
            (
                Let("dx", sub(load("rpts", aff(("r", 2)), dt), var("qx", dt), dt), dt),
                Let("dy", sub(load("rpts", aff(("r", 2), const=1), dt), var("qy", dt), dt), dt),
                Let("d2", fma(var("dx", dt), var("dx", dt),
                              mul(var("dy", dt), var("dy", dt), dt), dt), dt),
                Assign("best", BinOp(BinOpKind.MIN, var("best", dt), var("d2", dt), dt), dt),
            ),
        ),
        Store("nearest", aff("gx"), var("best", dt), dt),
    )
    kernel = Kernel(
        name="nearest_neighbor_kernel",
        arrays=(
            ArrayDecl("qpts", dt, "2*queries"),
            ArrayDecl("rpts", dt, "2*refs"),
            ArrayDecl("nearest", dt, "queries", is_output=True),
        ),
        params=(ScalarParam("refs", I32), ScalarParam("queries", I32)),
        body=body,
        work_items="queries",
    )
    return assemble(
        family="knn_dist", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"queries": queries, "refs": refs},
        binding_exprs={"refs": "refs", "queries": "queries"},
        description="brute-force nearest-neighbour distance",
    )


@family("kmeans_assign", "misc", tendency="cb")
def build_kmeans(variant: int, language: Language):
    rng = variant_rng("kmeans_assign", variant, language)
    dt = _dt(variant)
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    clusters = int(rng.choice([16, 32, 64]))
    body = (
        Let("px_val", load("pts", aff(("gx", 2)), dt), dt),
        Let("py_val", load("pts", aff(("gx", 2), const=1), dt), dt),
        Let("best", _c(1e30, dt), dt),
        Let("best_k", Const(0, I32), I32),
        For(
            "k", "clusters",
            (
                Let("dx", sub(load("centers", aff(("k", 2)), dt), var("px_val", dt), dt), dt),
                Let("dy", sub(load("centers", aff(("k", 2), const=1), dt),
                              var("py_val", dt), dt), dt),
                Let("d2", fma(var("dx", dt), var("dx", dt),
                              mul(var("dy", dt), var("dy", dt), dt), dt), dt),
                If(
                    cond=BinOp(BinOpKind.LT, var("d2", dt), var("best", dt), I32),
                    then=(
                        Assign("best", var("d2", dt), dt),
                        Assign("best_k", Var("k", I32), I32),
                    ),
                    taken_fraction=0.2,
                ),
            ),
        ),
        Store("assign", aff("gx"), var("best_k", I32), I32),
    )
    kernel = Kernel(
        name="kmeans_assign_kernel",
        arrays=(
            ArrayDecl("pts", dt, "2*n"),
            ArrayDecl("centers", dt, "2*clusters"),
            ArrayDecl("assign", I32, "n", is_output=True),
        ),
        params=(ScalarParam("clusters", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="kmeans_assign", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "clusters": clusters},
        binding_exprs={"clusters": "clusters", "n": "n"},
        description="k-means cluster assignment step",
    )


@family("pagerank_push", "misc", tendency="bb")
def build_pagerank(variant: int, language: Language):
    rng = variant_rng("pagerank_push", variant, language)
    dt = DType.F32
    n = int(rng.choice([1 << 18, 1 << 19, 1 << 20]))
    deg = int(rng.choice([8, 16, 32]))
    edge = Load("col_idx", aff(("gx", "deg"), "e"), I32)
    contrib = Load("rank_old",
                   DynamicIndex(expr=edge, range_hint="n", pattern="random"), dt)
    body = (
        Let("acc", mul(_c(0.0, dt), var("damping", dt), dt), dt),
        For(
            "e", "deg",
            (Assign("acc", add(var("acc", dt), contrib, dt), dt),),
        ),
        Store(
            "rank_new", aff("gx"),
            fma(var("damping", dt), var("acc", dt), var("teleport", dt), dt), dt,
        ),
    )
    kernel = Kernel(
        name="pagerank_gather_kernel",
        arrays=(
            ArrayDecl("col_idx", I32, "n*deg"),
            ArrayDecl("rank_old", dt, "n"),
            ArrayDecl("rank_new", dt, "n", is_output=True),
        ),
        params=(ScalarParam("damping", dt), ScalarParam("teleport", dt),
                ScalarParam("deg", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="pagerank_push", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "deg": deg},
        binding_exprs={"damping": 1, "teleport": 0, "deg": "deg", "n": "n"},
        description="PageRank gather step over fixed-degree graph",
    )


@family("spmv_ell", "misc", tendency="bb")
def build_spmv(variant: int, language: Language):
    rng = variant_rng("spmv_ell", variant, language)
    dt = _dt(variant)
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    nnz = int(rng.choice([8, 16, 32]))
    col = Load("cols", aff(("k", "n"), "gx"), I32)
    xval = Load("x", DynamicIndex(expr=col, range_hint="n", pattern="local"), dt)
    body = (
        Let("acc", mul(_c(0.0, dt), var("zero", dt), dt), dt),
        For(
            "k", "nnz",
            (
                Assign(
                    "acc",
                    fma(load("vals", aff(("k", "n"), "gx"), dt), xval, var("acc", dt), dt),
                    dt,
                ),
            ),
        ),
        Store("y", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="spmv_ellpack_kernel",
        arrays=(
            ArrayDecl("vals", dt, "n*nnz"),
            ArrayDecl("cols", I32, "n*nnz"),
            ArrayDecl("x", dt, "n"),
            ArrayDecl("y", dt, "n", is_output=True),
        ),
        params=(ScalarParam("zero", dt), ScalarParam("nnz", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="spmv_ell", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "nnz": nnz},
        binding_exprs={"zero": 0, "nnz": "nnz", "n": "n"},
        description="ELLPACK sparse matrix-vector product",
    )


@family("random_walk", "misc", tendency="bb")
def build_random_walk(variant: int, language: Language):
    rng = variant_rng("random_walk", variant, language)
    dt = DType.F32
    n = int(rng.choice([1 << 17, 1 << 18, 1 << 19]))
    steps = int(rng.choice([16, 32, 64]))
    next_node = BinOp(BinOpKind.MOD, Var("state", I32), Var("n", I32), I32)
    visit = Load("weights",
                 DynamicIndex(expr=Var("node", I32), range_hint="n", pattern="random"), dt)
    body = (
        Let("state", add(Var("gx", I32), Const(99991, I32), I32), I32),
        Let("node", BinOp(BinOpKind.MOD, Var("gx", I32), Var("n", I32), I32), I32),
        Let("acc", mul(_c(0.0, dt), var("scale", dt), dt), dt),
        For(
            "s", "steps",
            (
                Assign("state", BinOp(BinOpKind.XOR, Var("state", I32),
                                      BinOp(BinOpKind.SHL, Var("state", I32),
                                            Const(13, I32), I32), I32), I32),
                Assign("state", BinOp(BinOpKind.XOR, Var("state", I32),
                                      BinOp(BinOpKind.SHR, Var("state", I32),
                                            Const(17, I32), I32), I32), I32),
                Assign("node", next_node, I32),
                Assign("acc", add(var("acc", dt), visit, dt), dt),
            ),
        ),
        Store("scores", aff("gx"), var("acc", dt), dt),
    )
    kernel = Kernel(
        name="random_walk_kernel",
        arrays=(
            ArrayDecl("weights", dt, "n"),
            ArrayDecl("scores", dt, "n", is_output=True),
        ),
        params=(ScalarParam("scale", dt), ScalarParam("steps", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    return assemble(
        family="random_walk", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "steps": steps},
        binding_exprs={"scale": 1, "steps": "steps", "n": "n"},
        description="random-walk weight accumulation with PRNG hops",
    )
