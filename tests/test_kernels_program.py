"""Tests for program-level containers (ProgramSpec, RenderedProgram)."""

import dataclasses

import pytest

from repro.kernels.families import get_family
from repro.kernels.program import ProgramSpec, RenderedProgram, SourceFile
from repro.types import Language


@pytest.fixture(scope="module")
def spec():
    return get_family("saxpy").build(0, Language.CUDA)


class TestProgramSpec:
    def test_uid_format(self, spec):
        assert spec.uid == f"cuda/{spec.name}"

    def test_first_kernel(self, spec):
        assert spec.first_kernel is spec.kernels[0]

    def test_no_kernels_rejected(self, spec):
        with pytest.raises(ValueError):
            dataclasses.replace(spec, kernels=())

    def test_bad_verbosity_rejected(self, spec):
        with pytest.raises(ValueError):
            dataclasses.replace(spec, host_verbosity=3)

    def test_bad_util_header_rejected(self, spec):
        with pytest.raises(ValueError):
            dataclasses.replace(spec, util_header=5)


class TestSourceFile:
    def test_line_count(self):
        f = SourceFile("a.cu", "line1\nline2\nline3")
        assert f.line_count == 3

    def test_single_line(self):
        assert SourceFile("a.cu", "only").line_count == 1


class TestRenderedProgram:
    def test_concatenation_contains_all_files(self, spec):
        from repro.kernels.codegen import render_program

        rendered = render_program(spec)
        text = rendered.concatenated_source()
        for f in rendered.files:
            assert f.text in text
            assert f"// ===== file: {f.filename} =====" in text

    def test_total_lines(self):
        r = RenderedProgram(
            spec=get_family("saxpy").build(0, Language.CUDA),
            files=(SourceFile("a", "x\ny"), SourceFile("b", "z")),
        )
        assert r.total_lines == 3

    def test_render_is_deterministic(self, spec):
        from repro.kernels.codegen import render_program

        a = render_program(spec).concatenated_source()
        b = render_program(spec).concatenated_source()
        assert a == b
