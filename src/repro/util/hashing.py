"""Stable, platform-independent hashing.

Python's built-in :func:`hash` is salted per process (PYTHONHASHSEED), which
would make corpus generation and emulator behaviour differ between runs.
Everything here is SHA-256 based and deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def stable_hash_bytes(*parts: object) -> bytes:
    """Return a 32-byte SHA-256 digest of the given parts.

    Each part is converted to a canonical string form; parts are separated by
    an unambiguous delimiter so that ``("ab", "c")`` and ``("a", "bc")`` hash
    differently.
    """
    h = hashlib.sha256()
    for part in parts:
        data = _canonical(part)
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    return h.digest()


def stable_hash_hex(*parts: object) -> str:
    """Hex digest form of :func:`stable_hash_bytes`."""
    return stable_hash_bytes(*parts).hex()


def stable_hash_u64(*parts: object) -> int:
    """A 64-bit unsigned integer derived from :func:`stable_hash_bytes`."""
    return int.from_bytes(stable_hash_bytes(*parts)[:8], "little")


def _canonical(part: object) -> bytes:
    if isinstance(part, bytes):
        return b"b:" + part
    if isinstance(part, str):
        return b"s:" + part.encode("utf-8")
    if isinstance(part, bool):
        return b"B:" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i:" + str(part).encode("ascii")
    if isinstance(part, float):
        # repr() is exact for floats and stable across platforms for finite
        # values; this keeps float-keyed streams reproducible.
        return b"f:" + repr(part).encode("ascii")
    if part is None:
        return b"n:"
    if isinstance(part, (tuple, list)):
        return b"t:" + stable_hash_bytes(*part)
    raise TypeError(f"unhashable part type for stable hashing: {type(part)!r}")


def stable_choice_index(weights: Iterable[float], u: float) -> int:
    """Map a uniform draw ``u`` in [0, 1) to an index weighted by ``weights``.

    Used for deterministic categorical sampling. Weights need not be
    normalized; non-positive weights are treated as zero.
    """
    ws = [max(0.0, float(w)) for w in weights]
    total = sum(ws)
    if total <= 0.0:
        raise ValueError("all weights are non-positive")
    target = u * total
    acc = 0.0
    for i, w in enumerate(ws):
        acc += w
        if target < acc:
            return i
    return len(ws) - 1
