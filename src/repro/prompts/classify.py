"""RQ2/RQ3 classification prompt (paper Figure 4).

The system prompt declares the task and the response vocabulary; the user
portion carries the queried kernel's language, name, target-GPU hardware
bullet list, launch geometry, command line, and the program's concatenated
source. RQ2 uses pseudo-code examples, RQ3 two real code examples matched to
the queried language.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.records import Sample
from repro.prompts.examples import PSEUDO_EXAMPLES, real_examples_block
from repro.roofline.hardware import GpuSpec, default_gpu

SYSTEM_HEADER = """You are a GPU performance analysis expert that classifies kernels into
Arithmetic Intensity Roofline model categories based on their source code
characteristics. Your task is to provide one of the following performance
boundedness classifications: Compute or Bandwidth.

A kernel is considered Compute bound if its performance is primarily
limited by the number of operations it performs, and Bandwidth bound
if its performance is primarily limited by the rate at which data can be
moved between memory and processing units.

Provide only one word as your response, chosen from the set:
['Compute', 'Bandwidth'].
"""


@dataclass(frozen=True)
class ClassifyPrompt:
    """A fully-assembled classification prompt plus its metadata."""

    text: str
    sample_uid: str
    few_shot: bool


def build_classify_prompt(
    sample: Sample,
    *,
    few_shot: bool = False,
    gpu: GpuSpec | None = None,
) -> ClassifyPrompt:
    """Assemble the Figure 4 prompt for one dataset sample.

    ``few_shot=False`` is the RQ2 zero-shot form (pseudo-code examples);
    ``few_shot=True`` the RQ3 form (two real examples in the sample's
    language).
    """
    gpu = gpu or default_gpu()
    lang = sample.language.display
    bx, by, bz = sample.block
    gx, gy, gz = sample.grid
    examples = real_examples_block(sample.language) if few_shot else PSEUDO_EXAMPLES
    body = (
        f"{SYSTEM_HEADER}\n"
        f"{examples}\n"
        "Now, analyze the following source codes for the requested kernel of the\n"
        "specified hardware.\n\n"
        f"Classify the {lang} kernel called {sample.kernel_name} as Bandwidth or\n"
        f"Compute bound. The system it will execute on is a {gpu.name} with:\n"
        f"{gpu.prompt_block()}\n\n"
        f"The block and grid sizes of the invoked kernel are ({bx},{by},{bz}) and "
        f"({gx},{gy},{gz}),\nrespectively. The executable running this kernel is "
        f"launched with the following\ncommand-line arguments: {sample.argv}.\n\n"
        f"Below is the source code of the requested {lang} kernel:\n\n"
        f"{sample.source}\n"
    )
    return ClassifyPrompt(text=body, sample_uid=sample.uid, few_shot=few_shot)
