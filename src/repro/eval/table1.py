"""Table 1 orchestration: every model × every experiment column.

Regenerates the paper's headline table — model metadata (reasoning flag,
pricing), RQ1 accuracy (plain and CoT, best over shot counts), and RQ2/RQ3
accuracy / macro-F1 / MCC — sorted like the paper (by RQ1 accuracy, with the
unreported models keeping their row positions via dashes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dataset import Sample, paper_dataset
from repro.eval.engine import EvalEngine
from repro.eval.rq1 import Rq1Result, run_rq1
from repro.eval.rq23 import ClassificationResult, run_rq2, run_rq3
from repro.llm.base import LlmModel
from repro.llm.registry import all_models
from repro.util.tables import format_markdown_table, format_table

#: Paper values for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE1 = {
    # name: (rq1, rq1_cot, rq2_acc, rq2_f1, rq2_mcc, rq3_acc, rq3_f1, rq3_mcc)
    "o3-mini-high": (100.0, 100.0, 64.12, 62.33, 31.36, 63.53, 60.91, 31.63),
    "o1": (None, None, 64.12, 61.67, 32.73, 61.47, 58.77, 26.70),
    "o3-mini": (100.0, 100.0, 62.06, 60.80, 25.84, 62.94, 60.88, 29.13),
    "gpt-4.5-preview": (None, None, 59.71, 59.45, 19.66, 60.88, 60.25, 22.50),
    "o1-mini-2024-09-12": (100.0, 100.0, 59.64, 58.91, 19.92, 56.47, 55.98, 13.24),
    "gemini-2.0-flash-001": (91.25, 92.50, 55.59, 55.45, 11.25, 53.82, 48.96, 9.72),
    "gpt-4o-2024-11-20": (91.25, 96.25, 52.06, 41.04, 8.20, 53.24, 44.17, 10.93),
    "gpt-4o-mini": (90.00, 100.0, 50.59, 50.03, 1.20, 52.35, 50.92, 5.01),
    "gpt-4o-mini-2024-07-18": (90.00, 100.0, 50.29, 49.88, 0.60, 52.06, 50.46, 4.41),
}

HEADERS = (
    "Model Name",
    "Reasoning",
    "Cost in/out ($/1M)",
    "RQ1 Acc.",
    "RQ1 CoT Acc.",
    "RQ2 Acc.",
    "RQ2 F1",
    "RQ2 MCC",
    "RQ3 Acc.",
    "RQ3 F1",
    "RQ3 MCC",
)


@dataclass(frozen=True)
class Table1Row:
    """One model's measured results across all Table 1 columns."""

    model_name: str
    reasoning: bool
    cost: str
    rq1: Rq1Result | None
    rq2: ClassificationResult
    rq3: ClassificationResult

    def cells(self) -> list[object]:
        rq1_acc = self.rq1.best_accuracy if self.rq1 else None
        rq1_cot = self.rq1.best_accuracy_cot if self.rq1 else None
        return [
            self.model_name,
            "yes" if self.reasoning else "",
            self.cost,
            rq1_acc,
            rq1_cot,
            self.rq2.metrics.accuracy,
            self.rq2.metrics.macro_f1,
            self.rq2.metrics.mcc,
            self.rq3.metrics.accuracy,
            self.rq3.metrics.macro_f1,
            self.rq3.metrics.mcc,
        ]


@dataclass(frozen=True)
class Table1:
    rows: tuple[Table1Row, ...]

    def render(self) -> str:
        return format_table(
            HEADERS,
            [r.cells() for r in self.rows],
            title="Table 1 — evaluation results (measured by this reproduction)",
        )

    def render_markdown(self) -> str:
        return format_markdown_table(HEADERS, [r.cells() for r in self.rows])

    def row(self, model_name: str) -> Table1Row:
        for r in self.rows:
            if r.model_name == model_name:
                return r
        raise KeyError(model_name)


def build_row(
    model: LlmModel,
    samples: Sequence[Sample],
    *,
    num_rooflines: int = 240,
    engine: EvalEngine | None = None,
) -> Table1Row:
    """Run all experiments for one model."""
    engine = engine or EvalEngine()
    cfg = model.config
    rq1 = (
        run_rq1(model, num_rooflines=num_rooflines, engine=engine)
        if cfg.rq1_reported
        else None
    )
    return Table1Row(
        model_name=cfg.name,
        reasoning=cfg.reasoning,
        cost=f"${cfg.input_cost_per_m:g} / ${cfg.output_cost_per_m:g}",
        rq1=rq1,
        rq2=run_rq2(model, samples, engine=engine),
        rq3=run_rq3(model, samples, engine=engine),
    )


def build_table1(
    samples: Sequence[Sample] | None = None,
    *,
    models: Sequence[LlmModel] | None = None,
    num_rooflines: int = 240,
    engine: EvalEngine | None = None,
) -> Table1:
    """Regenerate the full Table 1.

    One engine spans every (model × RQ) cell, so a warm cache turns the
    whole grid into lookups and ``engine.stats`` describes the sweep.
    """
    engine = engine or EvalEngine()
    if samples is None:
        # Cold start builds (and profiles) the dataset here: fan it over
        # the engine's workers instead of a single thread.
        samples = paper_dataset(jobs=engine.jobs).balanced
    models = list(models) if models is not None else all_models()
    rows = [
        build_row(m, samples, num_rooflines=num_rooflines, engine=engine)
        for m in models
    ]
    return Table1(rows=tuple(rows))
