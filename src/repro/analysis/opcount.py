"""Operation counting over expression text.

Given a statement's raw text and a type environment, counts arithmetic
operations by class (SP/DP/INT) the way a careful performance analyst reads
code: value arithmetic is classified by the operands' declared types,
address arithmetic inside ``[]`` is integer work, and math intrinsics carry
their expansion cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.clexer import (
    TokKind,
    Token,
    lex,
    number_is_f32,
    number_is_float,
)

#: FLOP-equivalent cost and SFU weight per math intrinsic (matches the
#: hardware-counter conventions the simulator uses; an analyst calibrated on
#: profiled kernels would converge to the same table).
MATH_COSTS: dict[str, tuple[float, float]] = {
    "sqrtf": (4.0, 1.0), "sqrt": (4.0, 1.0),
    "rsqrtf": (4.0, 1.0), "rsqrt": (4.0, 1.0),
    "expf": (8.0, 1.0), "exp": (8.0, 1.0),
    "logf": (8.0, 1.0), "log": (8.0, 1.0),
    "sinf": (8.0, 1.0), "sin": (8.0, 1.0),
    "cosf": (8.0, 1.0), "cos": (8.0, 1.0),
    "tanhf": (12.0, 2.0), "tanh": (12.0, 2.0),
    "powf": (16.0, 2.0), "pow": (16.0, 2.0),
    "erff": (16.0, 2.0), "erf": (16.0, 2.0),
    "fabsf": (1.0, 0.0), "fabs": (1.0, 0.0),
    "fmaf": (2.0, 0.0), "fma": (2.0, 0.0),
    "floorf": (1.0, 0.0), "floor": (1.0, 0.0),
    "fminf": (1.0, 0.0), "fmin": (1.0, 0.0),
    "fmaxf": (1.0, 0.0), "fmax": (1.0, 0.0),
}

_BINARY_OPS = {
    "+": 1.0, "-": 1.0, "*": 1.0, "/": 4.0, "%": 4.0,
    "&": 1.0, "|": 1.0, "^": 1.0, "<<": 1.0, ">>": 1.0,
    "<": 1.0, ">": 1.0, "<=": 1.0, ">=": 1.0, "==": 1.0, "!=": 1.0,
    "&&": 1.0, "||": 1.0, "?": 1.0,
}

_TYPE_SIZES = {"float": 4, "double": 8, "int": 4, "long long": 8, "long": 8,
               "unsigned": 4, "size_t": 8}


@dataclass
class OpVector:
    """Counted operations by class, plus special-function issue weight."""

    sp: float = 0.0
    dp: float = 0.0
    int_: float = 0.0
    sfu: float = 0.0

    def add(self, other: "OpVector", scale: float = 1.0) -> None:
        self.sp += other.sp * scale
        self.dp += other.dp * scale
        self.int_ += other.int_ * scale
        self.sfu += other.sfu * scale

    def add_class(self, cls: str, count: float) -> None:
        if cls == "sp":
            self.sp += count
        elif cls == "dp":
            self.dp += count
        else:
            self.int_ += count

    @property
    def total(self) -> float:
        return self.sp + self.dp + self.int_


@dataclass(frozen=True)
class RawAccess:
    """One array subscript found in a statement."""

    array: str
    index_text: str
    kind: str  # "load" | "store" | "rmw"


@dataclass
class TypeEnv:
    """Declared types of parameters and locals."""

    scalars: dict[str, str] = field(default_factory=dict)
    pointers: dict[str, str] = field(default_factory=dict)
    shared: set[str] = field(default_factory=set)

    def declare_scalar(self, name: str, type_name: str) -> None:
        self.scalars[name] = type_name

    def declare_pointer(self, name: str, type_name: str) -> None:
        self.pointers[name] = type_name

    def declare_shared(self, name: str, type_name: str) -> None:
        self.pointers[name] = type_name
        self.shared.add(name)

    def elem_size(self, array: str) -> int:
        return _TYPE_SIZES.get(self.pointers.get(array, "float"), 4)

    def value_class(self, tokens: list[Token]) -> str:
        """Arithmetic class of an expression: dp > sp > int precedence."""
        saw_float = False
        depth = 0
        for i, t in enumerate(tokens):
            if t.kind is TokKind.PUNCT:
                if t.text == "[":
                    depth += 1
                elif t.text == "]":
                    depth -= 1
                continue
            if depth > 0:
                continue  # index arithmetic does not set the value class
            if (
                i > 0
                and tokens[i - 1].kind is TokKind.PUNCT
                and tokens[i - 1].text in (".", "->")
            ):
                continue  # member access (blockIdx.x), not a variable
            if t.kind is TokKind.NUMBER:
                if number_is_float(t.text):
                    if number_is_f32(t.text):
                        saw_float = True
                    else:
                        return "dp"
            elif t.kind is TokKind.IDENT:
                name = t.text
                ty = self.scalars.get(name) or self.pointers.get(name)
                if ty == "double":
                    return "dp"
                if ty == "float":
                    saw_float = True
                if name in ("double",):  # cast
                    return "dp"
                if name == "float":
                    saw_float = True
        return "sp" if saw_float else "int"


def scan_statement(text: str, env: TypeEnv) -> tuple[OpVector, list[RawAccess]]:
    """Count ops and collect array accesses for one statement's text.

    Handles plain expressions, assignments (`lhs = rhs`, `lhs op= rhs`), and
    ``atomicAdd(&arr[idx], v)`` read-modify-writes.
    """
    tokens = lex(text)
    ops = OpVector()
    accesses: list[RawAccess] = []
    if not tokens:
        return ops, accesses

    # atomicAdd(&target[idx], value)
    if tokens[0].kind is TokKind.IDENT and tokens[0].text == "atomicAdd":
        inner = text[text.index("(") + 1 : text.rindex(")")]
        parts = _split_top(inner)
        if len(parts) == 2:
            target = parts[0].lstrip(" &")
            arr, idx = _split_subscript(target)
            if arr:
                accesses.append(RawAccess(arr, idx, "rmw"))
                _count_expr(lex(idx), env, ops, in_index=True)
            rhs_ops, rhs_acc = scan_statement(parts[1], env)
            ops.add(rhs_ops)
            accesses.extend(rhs_acc)
            cls = "dp" if env.pointers.get(arr) == "double" else (
                "sp" if env.pointers.get(arr) == "float" else "int"
            )
            ops.add_class(cls, 1.0)  # the add itself
            return ops, accesses

    # store form: IDENT [ ... ] =  / op=
    store_split = _match_store(tokens, text)
    if store_split is not None:
        arr, idx_text, op_assign, rhs_text = store_split
        kind = "store" if op_assign == "=" else "rmw"
        accesses.append(RawAccess(arr, idx_text, kind))
        _count_expr(lex(idx_text), env, ops, in_index=True)
        rhs_ops, rhs_acc = scan_statement(rhs_text, env)
        ops.add(rhs_ops)
        accesses.extend(rhs_acc)
        if op_assign != "=":
            cls = env.value_class(lex(rhs_text))
            ops.add_class(cls, 1.0)
        return ops, accesses

    # scalar assignment: IDENT = rhs / IDENT op= rhs
    if (
        len(tokens) >= 2
        and tokens[0].kind is TokKind.IDENT
        and tokens[1].kind is TokKind.PUNCT
        and tokens[1].text in ("=", "+=", "-=", "*=", "/=")
        and tokens[0].text not in MATH_COSTS
    ):
        eq_pos = text.index("=", tokens[1].pos) if "=" in tokens[1].text else -1
        rhs_text = text[tokens[1].pos + len(tokens[1].text):]
        rhs_ops, rhs_acc = scan_statement(rhs_text, env)
        ops.add(rhs_ops)
        accesses.extend(rhs_acc)
        if tokens[1].text != "=":
            cls = env.value_class(lex(rhs_text + " " + tokens[0].text))
            ops.add_class(cls, 1.0)
        return ops, accesses

    _count_expr(tokens, env, ops, in_index=False, accesses=accesses)
    return ops, accesses


def _count_expr(
    tokens: list[Token],
    env: TypeEnv,
    ops: OpVector,
    *,
    in_index: bool,
    accesses: list[RawAccess] | None = None,
) -> None:
    """Linear scan over an expression's tokens, counting operators."""
    value_class = "int" if in_index else env.value_class(tokens)
    depth = 0
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind is TokKind.PUNCT:
            if t.text == "[":
                depth += 1
            elif t.text == "]":
                depth -= 1
            elif t.text in _BINARY_OPS:
                # unary +/- heuristics: preceded by nothing/op/open bracket
                if t.text in ("+", "-") and (
                    i == 0
                    or (
                        tokens[i - 1].kind is TokKind.PUNCT
                        and tokens[i - 1].text not in (")", "]")
                    )
                ):
                    i += 1
                    continue
                cls = "int" if (depth > 0 or in_index) else value_class
                ops.add_class(cls, _BINARY_OPS[t.text])
            i += 1
            continue
        if t.kind is TokKind.IDENT:
            nxt = tokens[i + 1] if i + 1 < n else None
            if nxt is not None and nxt.kind is TokKind.PUNCT and nxt.text == "(":
                cost = MATH_COSTS.get(t.text)
                if cost is not None:
                    cls = value_class if value_class != "int" else "sp"
                    ops.add_class(cls, cost[0])
                    ops.sfu += cost[1]
                i += 1
                continue
            if (
                accesses is not None
                and nxt is not None
                and nxt.kind is TokKind.PUNCT
                and nxt.text == "["
                and t.text in env.pointers
            ):
                # collect the subscript text
                close, idx_text = _subscript_text(tokens, i + 1)
                accesses.append(RawAccess(t.text, idx_text, "load"))
                # index arithmetic counted as INT
                idx_ops = OpVector()
                _count_expr(lex(idx_text), env, idx_ops, in_index=True)
                ops.add(idx_ops)
                ops.int_ += 1.0  # base+offset address add
                i = close + 1
                continue
        i += 1


def _subscript_text(tokens: list[Token], open_idx: int) -> tuple[int, str]:
    depth = 0
    texts: list[str] = []
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind is TokKind.PUNCT and t.text == "[":
            depth += 1
            if depth == 1:
                continue
        if t.kind is TokKind.PUNCT and t.text == "]":
            depth -= 1
            if depth == 0:
                return j, " ".join(texts)
        texts.append(t.text)
    return len(tokens) - 1, " ".join(texts)


def _match_store(tokens: list[Token], text: str):
    """Detect ``arr[IDX] = rhs`` / ``arr[IDX] op= rhs`` at statement level."""
    if (
        len(tokens) < 4
        or tokens[0].kind is not TokKind.IDENT
        or tokens[1].kind is not TokKind.PUNCT
        or tokens[1].text != "["
    ):
        return None
    depth = 0
    close = -1
    for j in range(1, len(tokens)):
        t = tokens[j]
        if t.kind is TokKind.PUNCT and t.text == "[":
            depth += 1
        elif t.kind is TokKind.PUNCT and t.text == "]":
            depth -= 1
            if depth == 0:
                close = j
                break
    if close == -1 or close + 1 >= len(tokens):
        return None
    assign = tokens[close + 1]
    if assign.kind is not TokKind.PUNCT or assign.text not in ("=", "+=", "-=", "*=", "/="):
        return None
    if assign.text == "=" and close + 2 < len(tokens):
        nxt = tokens[close + 2]
        if nxt.kind is TokKind.PUNCT and nxt.text == "=":
            return None  # '==' comparison, not a store
    arr = tokens[0].text
    idx_start = tokens[1].pos + 1
    idx_end = tokens[close].pos
    rhs_start = assign.pos + len(assign.text)
    return arr, text[idx_start:idx_end].strip(), assign.text, text[rhs_start:]


def _split_top(text: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur).strip())
    return parts


def _split_subscript(text: str) -> tuple[str, str]:
    """Split ``arr[idx]`` into (arr, idx); ('', '') when not a subscript."""
    b = text.find("[")
    if b == -1 or not text.rstrip().endswith("]"):
        return "", ""
    return text[:b].strip(), text[b + 1 : text.rindex("]")].strip()
