"""Stdlib HTTP front end answering roofline-classification queries.

Two layers:

* :class:`PredictionService` — the async application: uid → sample lookup
  (the paper's balanced dataset, or any scenario GPU's re-profiled twin),
  prompt construction through the *same* :func:`build_classify_prompt`
  path as the batch CLI (so cache keys match entry for entry), and
  completion through an :class:`~repro.serve.engine.AsyncEvalEngine`.
  Against a warm :class:`~repro.eval.engine.DiskResponseStore` every
  query is a cache hit — zero new completions, no model inference on the
  request path. The service also owns *admission control*: at most
  ``queue_budget`` classifications in flight, the rest shed with a
  429-shaped :class:`~repro.serve.resilience.LoadShedError`, and a
  request-supplied deadline (``X-Deadline-Ms``) propagates down to the
  engine's retry loop.
* :class:`PredictionServer` — a :class:`ThreadingHTTPServer` whose
  handler threads bridge into one background asyncio event loop
  (``run_coroutine_threadsafe``), keeping the engine's single-loop
  coalescing semantics while the stdlib server deals with sockets. It
  knows how to *drain*: :meth:`PredictionServer.drain` flips the server
  to draining (``/healthz`` answers 503, work endpoints shed), waits for
  in-flight requests to finish, then closes.

Endpoints (all JSON):

* ``GET /healthz`` — liveness; 503 ``{"status": "draining"}`` once a
  drain begins.
* ``GET /v1/models`` — servable model names.
* ``GET /v1/samples`` — balanced-dataset uids with ground-truth labels.
* ``GET /v1/stats`` — engine counters (hits/misses/coalesced/retries,
  failover/hedge/shed totals, queue depth, per-provider breaker states).
* ``GET|POST /v1/classify`` — one prediction. Query params (GET) or a
  JSON body (POST): ``uid`` (required), ``model``, ``few_shot``, ``gpu``.
  Optional ``X-Deadline-Ms`` header: the caller's end-to-end budget.

Failure statuses: 429 + ``Retry-After`` when shed (queue over budget or
deadline expired), 503 + ``Retry-After`` when every provider breaker is
open or upstream retries exhausted, 504 when the handler-side wait times
out.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import TimeoutError as _FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence
from urllib.parse import parse_qs, urlsplit

from repro.dataset import Sample, paper_dataset
from repro.eval.matrix import scenario_samples
from repro.llm.pricing import query_cost_usd
from repro.llm.registry import MODEL_NAMES
from repro.prompts import (
    build_classify_prompt,
    get_variant,
    variant_for_few_shot,
)
from repro.roofline.hardware import GpuSpec, get_gpu
from repro.serve.engine import AsyncEvalEngine, ProviderChain
from repro.serve.providers import resolve_provider
from repro.serve.resilience import AllProvidersUnavailable, LoadShedError
from repro.util.retry import DeadlineExceeded, TransientError

#: The paper's headline model — the default for unqualified queries.
DEFAULT_MODEL = "o3-mini-high"


class ServiceError(Exception):
    """A client-visible failure with an HTTP status."""

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class PredictionService:
    """The serving application: samples + providers + async engine.

    Sample indices and provider chains are built lazily and memoized:
    the first query against a GPU pays its (profile-store-backed) dataset
    build, later ones are dictionary lookups. Memo access is locked —
    handler threads funnel work onto one event loop, but the blocking
    builds run in ``to_thread`` workers.

    ``provider_family`` may be a comma-separated failover chain
    (``"emulated,wire"``): the first family is primary, the rest are
    fallbacks tried when the primary's breaker is open or its retries
    exhaust. Every chain member serves the same model config, so cache
    keys are identical whichever member answers.
    """

    def __init__(
        self,
        engine: AsyncEvalEngine,
        *,
        provider_family: str = "emulated",
        jobs: int = 1,
        queue_budget: int = 64,
    ) -> None:
        families = [f.strip() for f in provider_family.split(",") if f.strip()]
        if not families:
            raise ValueError(f"no provider family in {provider_family!r}")
        if queue_budget < 1:
            raise ValueError(f"queue_budget must be >= 1, got {queue_budget}")
        self.engine = engine
        self.provider_family = families[0]
        self.fallback_families = tuple(families[1:])
        self.jobs = jobs
        self.queue_budget = queue_budget
        self._admitted = 0  # event-loop-confined in-flight gauge
        self._lock = threading.Lock()
        self._providers: dict[str, ProviderChain] = {}
        # gpu key (None = the paper's default target) → uid → sample
        self._samples: dict[str | None, dict[str, Sample]] = {}

    # -- lazy indices --------------------------------------------------------
    def provider(self, model_name: str) -> ProviderChain:
        with self._lock:
            chain = self._providers.get(model_name)
        if chain is not None:
            return chain
        try:
            chain = resolve_provider(
                model_name,
                family=self.provider_family,
                fallbacks=self.fallback_families,
            )
        except KeyError:
            raise ServiceError(
                404, f"unknown model {model_name!r}; see /v1/models"
            ) from None
        with self._lock:
            return self._providers.setdefault(model_name, chain)

    def _sample_index(self, gpu: GpuSpec | None) -> dict[str, Sample]:
        key = gpu.name if gpu is not None else None
        with self._lock:
            index = self._samples.get(key)
        if index is not None:
            return index
        if gpu is None:
            samples: Sequence[Sample] = paper_dataset(jobs=self.jobs).balanced
        else:
            samples = scenario_samples(gpu, jobs=self.jobs)
        index = {s.uid: s for s in samples}
        with self._lock:
            return self._samples.setdefault(key, index)

    def warm(self) -> int:
        """Build the default sample index up front; returns its size."""
        return len(self._sample_index(None))

    # -- queries -------------------------------------------------------------
    def sample_listing(self) -> list[dict]:
        index = self._sample_index(None)
        return [
            {"uid": uid, "label": sample.label.word}
            for uid, sample in sorted(index.items())
        ]

    def stats(self) -> dict:
        s = self.engine.stats
        return {
            "hits": s.hits,
            "misses": s.misses,
            "uncached": s.uncached,
            "coalesced": s.coalesced,
            "retries": s.retries,
            "failed_over": s.failed_over,
            "hedged": s.hedged,
            "shed": s.shed,
            "completions": s.completions,
            "total": s.total,
            "queue_depth": self._admitted,
            "queue_budget": self.queue_budget,
            "breakers": self.engine.breaker_snapshots(),
        }

    async def classify(
        self,
        uid: str,
        *,
        model: str = DEFAULT_MODEL,
        few_shot: bool = False,
        variant: str | None = None,
        gpu: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """One roofline classification, served from the warm stores.

        ``deadline_ms`` is the caller's end-to-end budget from this
        instant; an admission over ``queue_budget`` sheds immediately
        rather than queueing work the deadline would strand.
        """
        if variant is not None and few_shot:
            raise ServiceError(
                400, "pass either few_shot (deprecated) or variant, not both"
            )
        if variant is not None:
            try:
                resolved = get_variant(variant)
            except KeyError as exc:
                raise ServiceError(404, str(exc)) from None
        else:
            resolved = variant_for_few_shot(few_shot)
        chain = self.provider(model)
        primary = chain[0] if isinstance(chain, tuple) else chain
        deadline = None
        if deadline_ms is not None:
            deadline = self.engine.clock() + deadline_ms / 1000.0

        # Admission control. Runs on the event loop with no await since
        # the check, so the gauge can't be raced past its budget.
        if self._admitted >= self.queue_budget:
            self.engine.stats._bump("shed")
            raise LoadShedError(
                f"queue over budget ({self._admitted} in flight, "
                f"budget {self.queue_budget})",
                retry_after=1.0,
            )
        self._admitted += 1
        try:
            spec: GpuSpec | None = None
            if gpu:
                try:
                    spec = await asyncio.to_thread(get_gpu, gpu)
                except KeyError as exc:
                    raise ServiceError(404, str(exc)) from None
            index = await asyncio.to_thread(self._sample_index, spec)
            sample = index.get(uid)
            if sample is None:
                raise ServiceError(
                    404, f"unknown sample uid {uid!r}; see /v1/samples"
                )
            # The batch CLI's exact prompt path (classification_items), so
            # the cache key below equals the sweep's and warm stores
            # answer it.
            prompt = (
                await asyncio.to_thread(
                    build_classify_prompt, sample, variant=resolved, gpu=spec
                )
            ).text
            before = self.engine.stats.completions
            info: dict = {}
            response = await self.engine.complete(
                chain, prompt, deadline=deadline, info=info
            )
            try:
                prediction = response.boundedness().word
            except ValueError:
                prediction = None
            return {
                "uid": uid,
                "model": primary.name,
                "gpu": spec.name if spec is not None else None,
                "variant": resolved.name,
                "few_shot": resolved.few_shot,
                "prediction": prediction,
                "truth": sample.label.word,
                "correct": prediction == sample.label.word,
                "cached": self.engine.stats.completions == before,
                "served_by": info.get("served_by"),
                "hedged": bool(info.get("hedged")),
                "usage": {
                    "input_tokens": response.usage.input_tokens,
                    "output_tokens": response.usage.output_tokens,
                    "reasoning_tokens": response.usage.reasoning_tokens,
                },
                "cost_usd": query_cost_usd(response.usage, primary.config),
            }
        finally:
            self._admitted -= 1


def _parse_bool(value: str | bool | None, name: str) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    lowered = str(value).strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("", "0", "false", "no", "off"):
        return False
    raise ServiceError(400, f"bad boolean for {name!r}: {value!r}")


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the service's event loop."""

    server: "PredictionServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: dict | list,
        *,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(0.0, retry_after):.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _run(self, coro) -> object:
        future = asyncio.run_coroutine_threadsafe(coro, self.server.loop)
        return future.result(timeout=self.server.request_timeout_s)

    def _deadline_ms(self) -> float | None:
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            value = float(raw.strip())
        except ValueError:
            raise ServiceError(
                400, f"X-Deadline-Ms must be a number, got {raw!r}"
            ) from None
        if value <= 0:
            raise ServiceError(400, f"X-Deadline-Ms must be > 0, got {raw!r}")
        return value

    def _classify_params(self) -> dict:
        split = urlsplit(self.path)
        if self.command == "POST":
            raw_length = self.headers.get("Content-Length")
            if raw_length is None:
                length = 0  # body-less POST: same as an empty object
            else:
                try:
                    length = int(raw_length.strip())
                except ValueError:
                    raise ServiceError(
                        400,
                        f"Content-Length must be an integer, "
                        f"got {raw_length!r}",
                    ) from None
                if length < 0:
                    raise ServiceError(
                        400, f"Content-Length must be >= 0, got {raw_length!r}"
                    )
            raw = self.rfile.read(length) if length else b"{}"
            try:
                params = json.loads(raw.decode("utf-8") or "{}")
            except ValueError:
                raise ServiceError(400, "request body is not valid JSON")
            if not isinstance(params, dict):
                raise ServiceError(400, "request body must be a JSON object")
        else:
            params = {
                k: v[-1] for k, v in parse_qs(split.query).items()
            }
        uid = params.get("uid")
        if not uid:
            raise ServiceError(400, "missing required parameter 'uid'")
        return {
            "uid": str(uid),
            "model": str(params.get("model") or DEFAULT_MODEL),
            "few_shot": _parse_bool(params.get("few_shot"), "few_shot"),
            "variant": (
                str(params["variant"]) if params.get("variant") else None
            ),
            "gpu": str(params["gpu"]) if params.get("gpu") else None,
            "deadline_ms": self._deadline_ms(),
        }

    # -- routes --------------------------------------------------------------
    def _route(self) -> None:
        service = self.server.service
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            draining = self.server.draining.is_set()
            if path == "/healthz":
                if draining:
                    self._send_json(503, {"status": "draining"})
                else:
                    self._send_json(200, {"status": "ok"})
            elif path == "/v1/models" and self.command == "GET":
                self._send_json(200, {"models": list(MODEL_NAMES)})
            elif path == "/v1/samples" and self.command == "GET":
                self._send_json(200, {"samples": service.sample_listing()})
            elif path == "/v1/stats" and self.command == "GET":
                payload = service.stats()
                payload["draining"] = draining
                self._send_json(200, payload)
            elif path == "/v1/classify":
                if draining:
                    raise ServiceError(
                        503, "server is draining", retry_after=1.0
                    )
                self.server._track_active(+1)
                try:
                    params = self._classify_params()
                    result = self._run(service.classify(**params))
                    self._send_json(200, result)  # type: ignore[arg-type]
                finally:
                    self.server._track_active(-1)
            else:
                raise ServiceError(404, f"no such endpoint: {path}")
        except ServiceError as exc:
            self._send_json(
                exc.status, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except LoadShedError as exc:
            self._send_json(
                429, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except DeadlineExceeded as exc:
            # The request's own budget ran out: shed-shaped, not a fault.
            service.engine.stats._bump("shed")
            self._send_json(
                429, {"error": f"deadline exceeded: {exc}"}, retry_after=1.0
            )
        except AllProvidersUnavailable as exc:
            self._send_json(
                503, {"error": str(exc)}, retry_after=exc.retry_after
            )
        except TransientError as exc:
            self._send_json(
                503,
                {"error": f"upstream unavailable: "
                          f"{type(exc).__name__}: {exc}"},
                retry_after=1.0,
            )
        except _FutureTimeout:
            self._send_json(504, {"error": "request timed out"})
        except asyncio.CancelledError:
            # close()/drain() cancelled the in-flight work under us.
            self._send_json(
                503, {"error": "server shutting down"}, retry_after=1.0
            )
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        self._route()

    def do_POST(self) -> None:  # noqa: N802
        self._route()


class PredictionServer(ThreadingHTTPServer):
    """The serving process: stdlib HTTP threads + one asyncio loop.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports the
    real one. :meth:`start` spins up the loop and server threads and
    returns (tests drive requests, then :meth:`close`);
    :meth:`serve_forever` is inherited for blocking use. :meth:`drain`
    is the graceful path: flip to draining, let in-flight work finish
    (bounded), then close.
    """

    daemon_threads = True

    def __init__(
        self,
        service: PredictionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 300.0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.request_timeout_s = request_timeout_s
        self.verbose = verbose
        self.draining = threading.Event()
        self.loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self.loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._serve_thread: threading.Thread | None = None
        self._active = 0
        self._active_lock = threading.Lock()
        self._closed = False

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def _track_active(self, delta: int) -> None:
        with self._active_lock:
            self._active += delta

    def active_requests(self) -> int:
        with self._active_lock:
            return self._active

    def start(self) -> "PredictionServer":
        """Run the loop and accept requests in background threads."""
        if not self._loop_thread.is_alive():
            self._loop_thread.start()
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        if not self._loop_thread.is_alive():
            self._loop_thread.start()
        super().serve_forever(poll_interval)

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop taking work, let in-flight requests finish, then close.

        Returns ``True`` when every in-flight request completed inside
        ``timeout`` (a clean drain); ``False`` when the timeout cut
        stragglers off — :meth:`close` then cancels their coalesced
        futures so nothing blocks shutdown either way.
        """
        self.draining.set()
        deadline = time.monotonic() + timeout
        clean = True
        while self.active_requests() > 0:
            if time.monotonic() >= deadline:
                clean = False
                break
            time.sleep(0.02)
        self.close()
        return clean

    def close(self) -> None:
        """Stop accepting, cancel pending work, stop the loop, release
        the socket. Idempotent — the drain path and the CLI's ``finally``
        may both call it."""
        if self._closed:
            return
        self._closed = True
        self.draining.set()
        self.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._loop_thread.is_alive():
            # Cancel pending work *on the loop* first: the coalesced
            # futures (waiters shield the owner, so an abandoned
            # in-flight call would pin its handler threads forever) and
            # then every still-running task — a classify coroutine
            # parked inside a wedged provider never finishes on its own.
            async def _cancel_pending():
                await self.service.engine.cancel_inflight()
                current = asyncio.current_task()
                for task in asyncio.all_tasks():
                    if task is not current:
                        task.cancel()

            try:
                asyncio.run_coroutine_threadsafe(
                    _cancel_pending(), self.loop
                ).result(timeout=2.0)
            except Exception:  # pragma: no cover - best-effort shutdown
                pass
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._loop_thread.join(timeout=5.0)
        self.loop.close()
        self.server_close()
