"""Fault-tolerance overhead — retry wrapper, journal, resume CLI.

The robustness layer promises to be near-free when nothing goes wrong:

* the sync retry wrapper adds microseconds per successful call — no
  sleeps, no clock reads beyond the attempt loop itself;
* journaling a sweep (chunked fan-out + fsync'd checkpoints) stays a
  small fraction of a warm sweep's wall time;
* ``--resume`` on an already-complete sweep is a pure journal+store read
  and must stay close to a plain warm CLI sweep.

Each is timed here with an explicit bound so a regression that makes the
happy path pay for the unhappy one fails loudly in tier-2.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.eval.engine import EvalEngine, MemoryResponseStore
from repro.eval.journal import SweepJournal
from repro.eval.matrix import run_matrix
from repro.llm import get_model
from repro.roofline.hardware import get_gpu
from repro.util.retry import RetryPolicy, retry_call
from repro.util.tables import format_table

MODEL = "o3-mini-high"
GPUS = ("V100", "H100")
SLICE = 60
JOBS = max(4, os.cpu_count() or 1)
CALLS = 20_000
#: Per-call budget for the retry wrapper on the success path.
MAX_RETRY_US = 50.0
#: Journaling may add at most this fraction to a warm in-process sweep.
MAX_JOURNAL_OVERHEAD = 0.25
#: ... and `--resume` at most this fraction to a warm CLI sweep, where
#: interpreter start-up dominates and absorbs scheduling noise.
MAX_RESUME_OVERHEAD = 0.25


def _sweep(store, journal=None):
    engine = EvalEngine(jobs=JOBS, store=store, backend="thread",
                        journal=journal)
    t0 = time.perf_counter()
    result = run_matrix(
        [get_model(MODEL)],
        [get_gpu(n) for n in GPUS],
        rqs=("rq2",),
        limit=SLICE,
        engine=engine,
    )
    return result, time.perf_counter() - t0


def _cli_sweep(cache_dir, *extra) -> float:
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
    env.setdefault("PYTHONPATH", "src")
    cmd = [
        sys.executable, "-m", "repro.cli", "sweep",
        "--model", MODEL, "--gpus", ",".join(GPUS),
        "--rq", "rq2", "--limit", str(SLICE), "--jobs", str(JOBS),
        *extra,
    ]
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - t0
    assert proc.returncode == 0, proc.stderr[-2000:]
    return elapsed


def _best_of(repeats, fn):
    return min(fn() for _ in range(repeats))


def test_fault_tolerance_overhead(dataset, tmp_path):
    # --- retry wrapper, success path ------------------------------------
    policy = RetryPolicy()

    def timed_direct():
        t0 = time.perf_counter()
        for _ in range(CALLS):
            (lambda: 1)()
        return time.perf_counter() - t0

    def timed_wrapped():
        t0 = time.perf_counter()
        for _ in range(CALLS):
            retry_call(lambda: 1, policy=policy)
        return time.perf_counter() - t0

    t_direct = _best_of(3, timed_direct)
    t_wrapped = _best_of(3, timed_wrapped)
    retry_us = 1e6 * (t_wrapped - t_direct) / CALLS

    # --- journaled vs plain warm in-process sweep -----------------------
    store = MemoryResponseStore()
    _sweep(store)  # cold fill; primes scenario profiling too
    baseline, t_plain = _sweep(store)
    journal = SweepJournal(tmp_path / "bench-journal.jsonl", label="bench")
    journaled, t_journal = _sweep(store, journal=journal)

    # --- warm CLI sweep vs warm CLI --resume ----------------------------
    cache_dir = tmp_path / "bench-cache"
    _cli_sweep(cache_dir)  # cold fill for the end-to-end runs
    t_cli_warm = _best_of(2, lambda: _cli_sweep(cache_dir))
    t_cli_resume = _best_of(2, lambda: _cli_sweep(cache_dir, "--resume"))

    rows = [
        ["retry_call per call", f"{retry_us:.1f}us",
         f"budget {MAX_RETRY_US:.0f}us"],
        ["in-process warm sweep", f"{t_plain:.3f}", ""],
        ["in-process journaled sweep", f"{t_journal:.3f}",
         f"{100.0 * (t_journal - t_plain) / t_plain:+.1f}%"],
        ["CLI warm sweep", f"{t_cli_warm:.3f}", ""],
        ["CLI warm sweep --resume", f"{t_cli_resume:.3f}",
         f"{100.0 * (t_cli_resume - t_cli_warm) / t_cli_warm:+.1f}%"],
    ]
    print()
    print(format_table(
        ["plan", "wall s", "overhead"],
        rows,
        title=(f"Fault-tolerance overhead on a warm sweep — "
               f"{len(GPUS)} GPUs × {SLICE} kernels"),
    ))

    assert journaled == baseline  # journaling never changes the result
    assert retry_us < MAX_RETRY_US, (
        f"retry_call adds {retry_us:.1f}us/call (> {MAX_RETRY_US:.0f}us)"
    )
    assert t_journal - t_plain < MAX_JOURNAL_OVERHEAD * t_plain + 0.05, (
        f"journaling added {t_journal - t_plain:.3f}s to a "
        f"{t_plain:.3f}s warm sweep"
    )
    assert t_cli_resume - t_cli_warm < MAX_RESUME_OVERHEAD * t_cli_warm, (
        f"--resume added {t_cli_resume - t_cli_warm:.3f}s to a "
        f"{t_cli_warm:.3f}s warm CLI sweep"
    )
