"""E7 — §3.2: chi-squared test of sampling-hyperparameter sensitivity.

Sweeps (temperature, top_p) over a grid for every non-reasoning model and
tests the settings x predicted-class contingency table for independence.

Paper result reproduced: no statistically significant effect (p > 0.05) for
any model, and reasoning models reject the overrides outright.
"""

from __future__ import annotations

import pytest

from repro.eval.hyperparams import run_hyperparam_study
from repro.eval.report import Comparison, render_comparisons
from repro.llm import get_model, non_reasoning_models
from repro.llm.base import SamplingNotSupported
from repro.util.tables import format_table

#: samples per grid point (full dataset x 4 settings x 5 models is slow;
#: 160 samples give the test plenty of power to detect a real effect)
N_SAMPLES = 160


def _run_all(balanced):
    return {
        m.name: run_hyperparam_study(m, balanced, max_samples=N_SAMPLES)
        for m in non_reasoning_models()
    }


def test_hyperparameter_insensitivity(benchmark, balanced):
    studies = benchmark.pedantic(_run_all, args=(balanced,), rounds=1, iterations=1)

    rows = []
    comparisons = []
    for name, study in studies.items():
        rows.append([
            name, study.chi2.statistic, study.chi2.dof, study.chi2.p_value,
            "yes" if study.significant else "no",
        ])
        comparisons.append(
            Comparison("§3.2", f"{name} p-value (paper: > 0.05)", None,
                       study.chi2.p_value)
        )
    print()
    print(format_table(
        ["Model", "Chi2", "dof", "p-value", "Significant@0.05"],
        rows, float_fmt=".4f",
        title="E7 — sampling-hyperparameter chi-squared study",
    ))
    print()
    print(render_comparisons("E7 — paper vs measured", comparisons))

    for name, study in studies.items():
        assert not study.significant, name

    # Reasoning models refuse sampling overrides, as their APIs do.
    with pytest.raises((ValueError, SamplingNotSupported)):
        run_hyperparam_study(get_model("o1"), balanced, max_samples=4)
