"""Tests for the BPE tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tokenizer import BpeTokenizer, pretokenize
from repro.tokenizer.bpe import _word_to_symbols


class TestPretokenize:
    def test_identifiers_with_leading_space(self):
        assert pretokenize("int foo") == ["int", " foo"]

    def test_numbers_split(self):
        assert "1024" in pretokenize("x = 1024;")

    def test_punctuation_runs(self):
        toks = pretokenize("a += b;")
        assert "+=" in toks

    def test_roundtrip_concatenation(self):
        text = "for (int i = 0; i < n; i++) { x[i] = 0.5f * y[i]; }\n"
        assert "".join(pretokenize(text)) == text


class TestTraining:
    def test_learns_frequent_pairs(self):
        tok = BpeTokenizer.train(["the the the the the"], num_merges=10)
        assert len(tok.merges) > 0
        # "the" should become few tokens
        assert len(tok.tokenize("the")) <= 2

    def test_zero_merges(self):
        tok = BpeTokenizer.train(["abc"], num_merges=0)
        assert tok.merges == []
        assert tok.tokenize("abc") == ["a", "b", "c"]

    def test_negative_merges_rejected(self):
        with pytest.raises(ValueError):
            BpeTokenizer.train(["x"], num_merges=-1)

    def test_min_pair_count_stops_training(self):
        tok = BpeTokenizer.train(["abcdef"], num_merges=100, min_pair_count=2)
        assert tok.merges == []  # every pair unique

    def test_deterministic(self):
        corpus = ["float x = a[i] * b[i];"] * 3
        t1 = BpeTokenizer.train(corpus, num_merges=20)
        t2 = BpeTokenizer.train(corpus, num_merges=20)
        assert t1.merges == t2.merges


class TestEncoding:
    @pytest.fixture(scope="class")
    def tok(self):
        corpus = [
            "for (int i = 0; i < n; i++) { out[i] = alpha * x[i] + y[i]; }",
            "float alpha = 2.0f; const float *x; float *y;",
        ] * 4
        return BpeTokenizer.train(corpus, num_merges=60)

    def test_encode_decode_roundtrip(self, tok):
        text = "float alpha = 2.0f;"
        assert tok.decode(tok.encode(text)) == text

    def test_roundtrip_unseen_text(self, tok):
        text = "__global__ void k(double *zz) { zz[0] = 1.0; }"
        assert tok.decode(tok.encode(text)) == text

    def test_count_matches_encode(self, tok):
        text = "for (int i = 0; i < n; i++) y[i] = x[i];"
        assert tok.count_tokens(text) == len(tok.encode(text))

    def test_compression(self, tok):
        text = "for (int i = 0; i < n; i++) { out[i] = alpha * x[i] + y[i]; }"
        assert tok.count_tokens(text) < len(text)

    def test_empty_text(self, tok):
        assert tok.encode("") == []
        assert tok.count_tokens("") == 0

    def test_decode_unknown_id_raises(self, tok):
        with pytest.raises(ValueError):
            tok.decode([10**9])

    def test_vocab_size_grows_with_merges(self):
        small = BpeTokenizer.train(["aaaa bbbb aaaa bbbb"], num_merges=2)
        assert small.vocab_size == 256 + len(small.merges)


class TestPersistence:
    def test_json_roundtrip(self):
        tok = BpeTokenizer.train(["hello world hello world"], num_merges=10)
        restored = BpeTokenizer.from_json(tok.to_json())
        text = "hello world"
        assert restored.encode(text) == tok.encode(text)


class TestCorpusTokenizer:
    def test_corpus_tokenizer_properties(self, tokenizer):
        assert tokenizer.vocab_size > 500
        sample = "__global__ void saxpy_kernel(const float *x, float *y, float a, int n)"
        count = tokenizer.count_tokens(sample)
        # code-like compression: between 2 and 5 chars/token
        assert len(sample) / 5 < count < len(sample) / 2

    def test_cached_singleton(self, tokenizer):
        from repro.tokenizer import corpus_tokenizer

        assert corpus_tokenizer() is tokenizer


def seed_train(corpus, num_merges=3000, min_pair_count=2):
    """The seed repo's recount-everything BPE trainer, replicated verbatim.

    O(num_merges × corpus): every iteration recounts every pair frequency
    across the whole word dict and rebuilds every word. The incremental
    trainer in :meth:`BpeTokenizer.train` must learn a byte-identical
    merge sequence; the hypothesis property below pins that equivalence.
    """
    from collections import Counter

    if num_merges < 0:
        raise ValueError("num_merges must be non-negative")
    word_freq = Counter()
    for text in corpus:
        for word in pretokenize(text):
            word_freq[_word_to_symbols(word)] += 1

    merges = []
    words = dict(word_freq)
    for _ in range(num_merges):
        pair_counts = Counter()
        for word, freq in words.items():
            for i in range(len(word) - 1):
                pair_counts[(word[i], word[i + 1])] += freq
        if not pair_counts:
            break
        best_pair, best_count = max(
            pair_counts.items(), key=lambda kv: (kv[1], kv[0])
        )
        if best_count < min_pair_count:
            break
        merges.append(best_pair)
        merged = best_pair[0] + best_pair[1]
        new_words = {}
        for word, freq in words.items():
            out = []
            i = 0
            while i < len(word):
                if (
                    i < len(word) - 1
                    and word[i] == best_pair[0]
                    and word[i + 1] == best_pair[1]
                ):
                    out.append(merged)
                    i += 2
                else:
                    out.append(word[i])
                    i += 1
            key = tuple(out)
            new_words[key] = new_words.get(key, 0) + freq
        words = new_words
    return merges


class TestIncrementalTrainerEquivalence:
    """The incremental trainer is byte-identical to the seed trainer."""

    @settings(max_examples=120, deadline=None)
    @given(
        texts=st.lists(
            st.text(
                alphabet="ab AB0(){};*+.\n\t_", min_size=0, max_size=120
            ),
            min_size=0,
            max_size=5,
        ),
        num_merges=st.integers(min_value=0, max_value=48),
        min_pair_count=st.integers(min_value=1, max_value=3),
    )
    def test_matches_seed_trainer(self, texts, num_merges, min_pair_count):
        expected = seed_train(
            texts, num_merges=num_merges, min_pair_count=min_pair_count
        )
        tok = BpeTokenizer.train(
            texts, num_merges=num_merges, min_pair_count=min_pair_count
        )
        assert tok.merges == expected
        # Same merges ⇒ same counting behaviour on arbitrary text,
        # including text outside the training distribution.
        reference = BpeTokenizer(merges=list(expected))
        probe = "".join(texts) + " zz0*9 __global__ {\n\t} +== .q"
        assert tok.count_tokens(probe) == reference.count_tokens(probe)
        assert tok.encode(probe) == reference.encode(probe)

    def test_matches_seed_on_code_like_text(self):
        corpus = [
            "for (int i = 0; i < n; i++) { out[i] = alpha * x[i] + y[i]; }",
            "__global__ void k(float *x, int n) { x[0] = 0.5f; }",
            "#pragma omp target teams distribute parallel for\n",
        ] * 3
        assert BpeTokenizer.train(corpus, num_merges=200).merges == seed_train(
            corpus, num_merges=200
        )

    def test_min_pair_count_one_exhausts_identically(self):
        # min_pair_count=1 drives training until no pairs remain — the
        # loop-termination edge the incremental bookkeeping must also hit.
        corpus = ["abcabd ee ff"]
        assert BpeTokenizer.train(
            corpus, num_merges=1000, min_pair_count=1
        ).merges == seed_train(corpus, num_merges=1000, min_pair_count=1)


class TestEncodeCache:
    def _tok(self, cache_size):
        return BpeTokenizer(
            merges=[("a", "b"), ("ab", "c")], cache_size=cache_size
        )

    def test_cache_is_bounded(self):
        tok = self._tok(cache_size=3)
        for word in ["abc", "abd", "abe", "abf", "abg"]:
            tok._encode_word(word)
        assert len(tok._cache) <= 3

    def test_lru_eviction_keeps_recently_used(self):
        tok = self._tok(cache_size=3)
        for word in ["one", "two", "three"]:
            tok._encode_word(word)
        tok._encode_word("one")  # refresh: now "two" is oldest
        tok._encode_word("four")
        assert "one" in tok._cache
        assert "two" not in tok._cache

    def test_zero_cache_size_disables_caching(self):
        tok = self._tok(cache_size=0)
        assert tok._encode_word("abc") == ("abc",)
        assert tok._cache == {}

    def test_cached_and_uncached_agree(self):
        cached, uncached = self._tok(200_000), self._tok(0)
        text = "abc abd xabcy ab ababab c"
        assert cached.encode(text) == uncached.encode(text)
        assert cached.count_tokens(text) == uncached.count_tokens(text)

    def test_digest_depends_only_on_merges(self):
        a = BpeTokenizer(merges=[("a", "b")], cache_size=7)
        b = BpeTokenizer(merges=[("a", "b")])
        c = BpeTokenizer(merges=[("a", "c")])
        a.count_tokens("abab")  # cache contents must not leak into digests
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
