"""Tests for the experiment runners, figures, and Table 1 plumbing."""

import pytest

from repro.eval import (
    Comparison,
    build_row,
    figure1_data,
    figure2_data,
    ordering_agreement,
    render_comparisons,
    run_hyperparam_study,
    run_queries,
    run_rq1,
    run_rq2,
    run_rq3,
)
from repro.llm import get_model
from repro.types import Boundedness, OpClass


class TestRunner:
    def test_run_queries(self, balanced_samples):
        from repro.prompts import build_classify_prompt

        model = get_model("o3-mini-high")
        items = [
            (s.uid, build_classify_prompt(s).text, s.label)
            for s in balanced_samples[:12]
        ]
        result = run_queries(model, items)
        assert len(result.records) == 12
        assert result.usage["requests"] == 12
        assert 0 <= result.accuracy <= 100

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            run_queries(get_model("o1"), [])

    def test_unparseable_scored_wrong(self):
        model = get_model("gpt-4o-mini")
        # off-task prompt answers "Bandwidth"; truth Compute counts it wrong,
        # truth Bandwidth counts it right
        r = run_queries(model, [("x", "not a real prompt", Boundedness.COMPUTE)])
        assert r.accuracy == 0.0


class TestRq1Runner:
    def test_small_run(self):
        r = run_rq1(get_model("gpt-4o-mini"), num_rooflines=20, shot_counts=(2,))
        assert set(r.accuracy_by_shots) == {2}
        assert 70 <= r.best_accuracy <= 100
        assert r.best_accuracy_cot >= r.best_accuracy - 5


class TestRq23Runners:
    def test_subset_run(self, balanced_samples):
        model = get_model("o3-mini")
        r2 = run_rq2(model, balanced_samples[:30])
        r3 = run_rq3(model, balanced_samples[:30])
        assert r2.metrics.n == 30
        assert not r2.few_shot and r3.few_shot


class TestHyperparams:
    def test_study_shape(self, balanced_samples):
        study = run_hyperparam_study(
            get_model("gpt-4o-mini"), balanced_samples, max_samples=40
        )
        assert len(study.table) == 4
        assert all(sum(row) == 40 for row in study.table)

    def test_insignificance_reproduced(self, balanced_samples):
        study = run_hyperparam_study(
            get_model("gpt-4o-2024-11-20"), balanced_samples, max_samples=80
        )
        assert not study.significant

    def test_reasoning_model_rejected(self):
        with pytest.raises(ValueError):
            run_hyperparam_study(get_model("o1"))


class TestFigures:
    def test_figure1_shape(self, dataset):
        fig = figure1_data(list(dataset.profiled))
        assert len(fig.points[OpClass.INT]) == 749  # every kernel does int work
        assert len(fig.points[OpClass.SP]) > 200
        assert len(fig.points[OpClass.DP]) > 100

    def test_figure1_majority_sp_int_bb(self, dataset):
        """Paper §2.1: 'the majority of the SP-FLOP and INT samples are BB
        on this hardware'."""
        fig = figure1_data(list(dataset.profiled))
        assert fig.bb_fraction(OpClass.SP) > 0.5
        assert fig.bb_fraction(OpClass.INT) > 0.5

    def test_figure1_points_under_roofline_ceiling(self, dataset):
        fig = figure1_data(list(dataset.profiled))
        rooflines = fig.gpu.rooflines()
        for oc in OpClass:
            for ai, perf in fig.points[oc]:
                assert perf <= rooflines[oc].attainable(ai) * 1.05

    def test_figure1_ascii_renders(self, dataset):
        fig = figure1_data(list(dataset.profiled)[:100])
        text = fig.render_ascii()
        assert "roofline" in text
        assert len(text.split("\n")) > 20

    def test_figure2_groups(self, dataset):
        fig = figure2_data(dataset)
        assert len(fig.groups) == 8  # 2 splits x 2 languages x 2 classes
        stats = fig.box_stats()
        assert all(s.maximum <= 8000 for s in stats.values())  # pruned

    def test_figure2_omp_shorter_than_cuda(self, dataset):
        """Paper Figure 2: 'OMP codes are, on average, able to use less
        tokens than the CUDA codes'."""
        fig = figure2_data(dataset)
        stats = fig.box_stats()
        cuda = [s.median for k, s in stats.items() if "CUDA" in k]
        omp = [s.median for k, s in stats.items() if "OMP" in k]
        assert sum(omp) / len(omp) < sum(cuda) / len(cuda)

    def test_figure2_ascii_renders(self, dataset):
        text = figure2_data(dataset).render_ascii()
        assert "train/CUDA/BB" in text


class TestTable1Plumbing:
    def test_build_row_small(self, balanced_samples):
        row = build_row(
            get_model("gpt-4o-mini"), balanced_samples[:20], num_rooflines=10
        )
        cells = row.cells()
        assert cells[0] == "gpt-4o-mini"
        assert cells[3] is not None  # RQ1 reported

    def test_unreported_rq1_is_none(self, balanced_samples):
        row = build_row(get_model("o1"), balanced_samples[:20], num_rooflines=5)
        assert row.rq1 is None
        assert row.cells()[3] is None


class TestReportHelpers:
    def test_render_comparisons(self):
        text = render_comparisons(
            "T", [Comparison("E1", "acc", 64.1, 63.8), Comparison("E2", "f1", None, 50.0)]
        )
        assert "E1" in text and "-" in text

    def test_ordering_agreement(self):
        assert ordering_agreement([3, 2, 1], [30, 20, 10]) == 1.0
        assert ordering_agreement([3, 2, 1], [10, 20, 30]) == 0.0
        assert ordering_agreement([1, 1], [5, 9]) == 1.0  # all ties skipped
