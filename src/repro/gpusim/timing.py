"""Execution-time model.

The simulator's timing follows the hierarchical roofline intuition: a kernel
finishes when its slowest resource does —

``t = max(t_dram, t_sp, t_dp, t_int, t_sfu) + launch overhead``

with achievable (not theoretical) throughputs: sustained bandwidth is a
fixed fraction of peak further degraded by coalescing quality, and compute
pipes run at an occupancy/ILP-dependent efficiency drawn deterministically
per kernel. This reproduces the paper's Figure 1 observation that *"the
theoretical peak performance is usually unmet"*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.gpusim.device import DeviceModel
from repro.types import OpClass
from repro.util.rng import RngStream


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-resource times (seconds) behind one kernel's runtime."""

    dram_s: float
    sp_s: float
    dp_s: float
    int_s: float
    sfu_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return (
            max(self.dram_s, self.sp_s, self.dp_s, self.int_s, self.sfu_s)
            + self.overhead_s
        )

    @property
    def bound_resource(self) -> str:
        pairs = [
            ("dram", self.dram_s),
            ("sp", self.sp_s),
            ("dp", self.dp_s),
            ("int", self.int_s),
            ("sfu", self.sfu_s),
        ]
        return max(pairs, key=lambda kv: kv[1])[0]

    def to_dict(self) -> dict:
        """JSON-ready form for the persistent profile store (bit-exact)."""
        return {
            "dram_s": self.dram_s,
            "sp_s": self.sp_s,
            "dp_s": self.dp_s,
            "int_s": self.int_s,
            "sfu_s": self.sfu_s,
            "overhead_s": self.overhead_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimingBreakdown":
        return cls(
            dram_s=float(data["dram_s"]),
            sp_s=float(data["sp_s"]),
            dp_s=float(data["dp_s"]),
            int_s=float(data["int_s"]),
            sfu_s=float(data["sfu_s"]),
            overhead_s=float(data["overhead_s"]),
        )


def estimate_time(
    *,
    ops: Mapping[OpClass, float],
    sfu_ops: float,
    dram_bytes: float,
    coalescing: float,
    device: DeviceModel,
    rng: RngStream,
) -> TimingBreakdown:
    """Estimate one invocation's runtime.

    ``coalescing`` in [0, 1] scales sustained bandwidth: badly-coalesced
    kernels pay twice — once in extra bytes (already in ``dram_bytes``) and
    once in reduced sustained bandwidth from partial-sector transactions.
    """
    spec = device.spec
    # Sustained bandwidth: peak * base efficiency * coalescing-dependent term.
    bw_frac = device.bandwidth_efficiency * (0.6 + 0.4 * coalescing)
    bw = spec.bandwidth_gbs * 1e9 * bw_frac
    dram_s = dram_bytes / bw

    # Per-kernel compute efficiency: occupancy and ILP vary across kernels;
    # drawn once, deterministically, per (device, kernel).
    eff = rng.uniform(device.compute_efficiency_lo, device.compute_efficiency_hi)
    sp_s = ops.get(OpClass.SP, 0.0) / (spec.sp_peak_gflops * 1e9 * eff)
    dp_s = ops.get(OpClass.DP, 0.0) / (spec.dp_peak_gflops * 1e9 * eff)
    int_s = ops.get(OpClass.INT, 0.0) / (spec.int_peak_giops * 1e9 * eff)
    sfu_s = sfu_ops / (spec.sp_peak_gflops * 1e9 * device.sfu_throughput_fraction * eff)

    overhead = device.launch_overhead_s * rng.uniform(0.8, 1.6)
    return TimingBreakdown(
        dram_s=dram_s, sp_s=sp_s, dp_s=dp_s, int_s=int_s, sfu_s=sfu_s, overhead_s=overhead
    )
