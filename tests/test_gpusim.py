"""Tests for the GPU simulator: memory model, profiler walker, timing."""

import pytest

from repro.gpusim import (
    AccessSite,
    DeviceModel,
    ProfileCounters,
    aggregate_traffic,
    bytes_per_execution,
    coalescing_quality,
    default_device,
    estimate_site_traffic,
    estimate_time,
    merge_counters,
    profile_first_kernel,
    profile_kernel,
)
from repro.gpusim.memory import merge_sites
from repro.kernels.families import get_family
from repro.types import Language, OpClass
from repro.util.rng import RngStream


@pytest.fixture(scope="module")
def dev():
    return default_device()


def _site(**kwargs):
    defaults = dict(
        array="x",
        elem_size=4,
        is_write=False,
        executions=1_000_000.0,
        gx_stride=1,
        footprint_elems=1_000_000.0,
        pattern="affine",
    )
    defaults.update(kwargs)
    return AccessSite(**defaults)


class TestCoalescing:
    def test_unit_stride_moves_element_size(self, dev):
        assert bytes_per_execution(_site(gx_stride=1), dev) == 4.0

    def test_broadcast_shares_sector_across_warp(self, dev):
        assert bytes_per_execution(_site(gx_stride=0), dev) == dev.sector_bytes / 32

    def test_large_stride_costs_full_sector(self, dev):
        assert bytes_per_execution(_site(gx_stride=16), dev) == dev.sector_bytes

    def test_moderate_stride_scales(self, dev):
        assert bytes_per_execution(_site(gx_stride=2), dev) == 8.0

    def test_random_pattern_costs_sector(self, dev):
        assert bytes_per_execution(_site(pattern="random"), dev) == dev.sector_bytes

    def test_descending_stride_same_as_ascending(self, dev):
        up = bytes_per_execution(_site(gx_stride=1), dev)
        down = bytes_per_execution(_site(gx_stride=-1), dev)
        assert up == down


class TestCacheReuse:
    def test_cache_resident_footprint_caps_traffic(self, dev):
        # Many re-reads of a small footprint: compulsory misses only.
        site = _site(executions=1e9, footprint_elems=1000.0)
        t = estimate_site_traffic(site, dev)
        assert t.dram_read_bytes == pytest.approx(4000.0)

    def test_streaming_footprint_pays_full_traffic(self, dev):
        site = _site(executions=1e6, footprint_elems=1e6)
        t = estimate_site_traffic(site, dev)
        assert t.dram_read_bytes == pytest.approx(4e6)

    def test_oversized_footprint_partial_reuse(self, dev):
        l2_elems = dev.l2_capacity_bytes / 4
        site = _site(executions=1e9, footprint_elems=l2_elems * 4)
        t = estimate_site_traffic(site, dev)
        assert t.dram_read_bytes > l2_elems * 4 * 4  # more than compulsory
        assert t.dram_read_bytes < 4e9  # less than no-cache

    def test_write_goes_to_write_channel(self, dev):
        t = estimate_site_traffic(_site(is_write=True), dev)
        assert t.dram_read_bytes == 0.0
        assert t.dram_write_bytes > 0.0

    def test_atomic_pays_both_directions(self, dev):
        t = estimate_site_traffic(_site(is_atomic=True, is_write=True), dev)
        assert t.dram_read_bytes > 0.0
        assert t.dram_write_bytes > 0.0


class TestSiteMerging:
    def test_stencil_neighbours_merge(self):
        sites = [
            _site(executions=1e6),
            _site(executions=1e6),
            _site(executions=1e6),
        ]
        merged = merge_sites(sites)
        assert len(merged) == 1
        assert merged[0].executions == pytest.approx(3e6)

    def test_different_arrays_stay_separate(self):
        merged = merge_sites([_site(array="a"), _site(array="b")])
        assert len(merged) == 2

    def test_reads_and_writes_stay_separate(self):
        merged = merge_sites([_site(), _site(is_write=True)])
        assert len(merged) == 2

    def test_merged_traffic_counts_footprint_once(self, dev):
        sites = [_site(executions=1e8, footprint_elems=1000.0) for _ in range(5)]
        r, w, useful, txn = aggregate_traffic(sites, dev)
        assert r == pytest.approx(4000.0)  # one compulsory fetch


class TestCoalescingQuality:
    def test_perfect(self):
        assert coalescing_quality(100.0, 100.0) == 1.0

    def test_wasteful(self):
        assert coalescing_quality(25.0, 100.0) == 0.25

    def test_zero_transactions(self):
        assert coalescing_quality(0.0, 0.0) == 1.0


class TestTiming:
    def test_memory_bound_kernel_time_tracks_bytes(self, dev):
        rng = RngStream("t")
        t = estimate_time(
            ops={OpClass.SP: 1e6, OpClass.DP: 0.0, OpClass.INT: 1e6},
            sfu_ops=0.0,
            dram_bytes=1e9,
            coalescing=1.0,
            device=dev,
            rng=rng,
        )
        assert t.bound_resource == "dram"
        assert t.total_s > 1e9 / (dev.spec.bandwidth_gbs * 1e9)

    def test_compute_bound_kernel(self, dev):
        t = estimate_time(
            ops={OpClass.SP: 1e13, OpClass.DP: 0.0, OpClass.INT: 0.0},
            sfu_ops=0.0,
            dram_bytes=1e6,
            coalescing=1.0,
            device=dev,
            rng=RngStream("t2"),
        )
        assert t.bound_resource == "sp"

    def test_sfu_can_dominate(self, dev):
        t = estimate_time(
            ops={OpClass.SP: 1e10, OpClass.DP: 0.0, OpClass.INT: 0.0},
            sfu_ops=1e10,
            dram_bytes=1e6,
            coalescing=1.0,
            device=dev,
            rng=RngStream("t3"),
        )
        assert t.sfu_s > t.sp_s

    def test_bad_coalescing_slows_memory(self, dev):
        kwargs = dict(
            ops={OpClass.SP: 0.0, OpClass.DP: 0.0, OpClass.INT: 0.0},
            sfu_ops=0.0,
            dram_bytes=1e9,
            device=dev,
        )
        good = estimate_time(coalescing=1.0, rng=RngStream("t4"), **kwargs)
        bad = estimate_time(coalescing=0.2, rng=RngStream("t4"), **kwargs)
        assert bad.dram_s > good.dram_s


class TestProfileCounters:
    def test_intensity(self):
        c = ProfileCounters("k", 100.0, 0.0, 50.0, 40.0, 10.0, 1e-3)
        assert c.intensity(OpClass.SP) == pytest.approx(2.0)
        assert c.intensity(OpClass.INT) == pytest.approx(1.0)

    def test_achieved_rates(self):
        c = ProfileCounters("k", 1e9, 0.0, 0.0, 1e6, 0.0, 1e-3)
        assert c.achieved_gops(OpClass.SP) == pytest.approx(1000.0)
        assert c.achieved_bandwidth_gbs() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProfileCounters("k", -1.0, 0, 0, 1, 1, 1e-3)
        with pytest.raises(ValueError):
            ProfileCounters("k", 1.0, 0, 0, 1, 1, 0.0)

    def test_merge(self):
        a = ProfileCounters("a", 1, 2, 3, 4, 5, 1e-3)
        b = ProfileCounters("b", 10, 20, 30, 40, 50, 2e-3)
        m = merge_counters("m", [a, b])
        assert m.sp_flops == 11
        assert m.time_s == pytest.approx(3e-3)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_counters("m", [])


class TestProfiler:
    def test_saxpy_counters_scale_with_n(self):
        fam = get_family("saxpy")
        spec = fam.build(0, Language.CUDA)
        prof = profile_first_kernel(spec)
        n = dict(spec.cmdline.flags)["n"]
        dt_size = spec.first_kernel.kernel.arrays[0].dtype.size
        # reads x and y, writes y: ~3 elements of traffic per work item
        expected = 3 * n * dt_size
        assert prof.counters.dram_bytes == pytest.approx(expected, rel=0.15)

    def test_saxpy_flops(self):
        spec = get_family("saxpy").build(0, Language.CUDA)
        prof = profile_first_kernel(spec)
        n = dict(spec.cmdline.flags)["n"]
        dt = spec.first_kernel.kernel.arrays[0].dtype
        flops = prof.counters.sp_flops if dt.size == 4 else prof.counters.dp_flops
        assert flops == pytest.approx(2 * n, rel=0.1)  # one mul + one add

    def test_pairwise_kernel_has_quadratic_flops(self):
        spec = get_family("nbody_naive").build(4, Language.CUDA)
        prof = profile_first_kernel(spec)
        n = dict(spec.cmdline.flags)["n"]
        total_fp = prof.counters.sp_flops + prof.counters.dp_flops
        assert total_fp > 5 * n * n  # >= ~20 flops per pair

    def test_shared_memory_reduces_traffic(self):
        naive = get_family("gemm_naive").build(0, Language.CUDA)
        tiled = get_family("gemm_tiled").build(0, Language.CUDA)
        p_naive = profile_first_kernel(naive)
        p_tiled = profile_first_kernel(tiled)
        n_naive = dict(naive.cmdline.flags)["n"]
        n_tiled = dict(tiled.cmdline.flags)["n"]
        per_thread_naive = p_naive.counters.dram_bytes / n_naive**2
        per_thread_tiled = p_tiled.counters.dram_bytes / n_tiled**2
        assert per_thread_tiled <= per_thread_naive * 1.5

    def test_profiling_deterministic(self):
        spec = get_family("heat2d").build(1, Language.CUDA)
        a = profile_first_kernel(spec).counters
        b = profile_first_kernel(spec).counters
        assert a == b

    def test_distinct_kernels_distinct_draws(self):
        a = profile_first_kernel(get_family("saxpy").build(0, Language.CUDA))
        b = profile_first_kernel(get_family("vecadd").build(0, Language.CUDA))
        assert a.counters.time_s != b.counters.time_s

    def test_branch_taken_fraction_scales_ops(self):
        """A branch with a small taken fraction contributes proportionally
        fewer dynamic ops than the same branch always taken."""
        import dataclasses

        from repro.kernels.ir import (
            ArrayDecl, BinOp, BinOpKind, Const, DType, If, Kernel, Let,
            ScalarParam, Store, aff, load, mul, var,
        )
        from repro.kernels.launch import CommandLine, KernelInstance, plan_launch_1d

        def make(taken):
            body = (
                Let("v", load("x", aff("gx")), DType.F32),
                If(
                    cond=BinOp(BinOpKind.GT, var("v"), Const(0.0, DType.F32), DType.I32),
                    then=(
                        Store("y", aff("gx"),
                              mul(var("v"), mul(var("v"), var("v"), DType.F32), DType.F32),
                              DType.F32),
                    ),
                    taken_fraction=taken,
                ),
            )
            return Kernel(
                name="branchy",
                arrays=(
                    ArrayDecl("x", DType.F32, "n"),
                    ArrayDecl("y", DType.F32, "n", is_output=True),
                ),
                params=(ScalarParam("n", DType.I32),),
                body=body,
                work_items="n",
            )

        cl = CommandLine(prog="b", flags=(("n", 1 << 20),))
        rare = profile_kernel(
            KernelInstance(make(0.1), plan_launch_1d(1 << 20), (("n", "n"),)),
            cl, uid="rare",
        )
        always = profile_kernel(
            KernelInstance(make(1.0), plan_launch_1d(1 << 20), (("n", "n"),)),
            cl, uid="always",
        )
        assert rare.counters.sp_flops < always.counters.sp_flops * 0.5

    def test_achieved_below_theoretical_peak(self, dev):
        """Figure 1's observation: achieved performance stays under peak."""
        for fam_name in ("nbody_naive", "mandelbrot", "gemm_naive"):
            spec = get_family(fam_name).build(0, Language.CUDA)
            prof = profile_first_kernel(spec)
            for oc, rl in dev.spec.rooflines():
                assert prof.counters.achieved_gops(oc) <= rl.peak * 1.001
