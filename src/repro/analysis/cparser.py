"""Lightweight structural parser for kernel bodies.

Parses the performance-relevant skeleton of a C kernel body — declarations,
``for`` loops (with bounds), ``if``/``else`` branches, expression statements,
pragmas — leaving expressions as raw text for the op/traffic counters. This
is a *source-level* analysis: it sees exactly what the paper's LLMs see and
nothing more.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

_TYPE_WORDS = ("float", "double", "int", "long", "unsigned", "char", "size_t")


@dataclass(frozen=True)
class Decl:
    """``float acc = <expr>;`` — a local declaration."""

    type_name: str
    name: str
    init_text: str


@dataclass(frozen=True)
class SharedDecl:
    """``__shared__ float tile[256];``"""

    type_name: str
    name: str
    size_text: str


@dataclass(frozen=True)
class ExprStmt:
    """Any expression/assignment statement, raw text without ';'."""

    text: str


@dataclass(frozen=True)
class Return:
    pass


@dataclass(frozen=True)
class Pragma:
    text: str


@dataclass(frozen=True)
class Loop:
    """``for (int VAR = START; VAR < BOUND; ...)`` with a parsed bound."""

    var: str
    start_text: str
    bound_text: str
    step_text: str
    body: tuple
    pragma: str | None = None


@dataclass(frozen=True)
class Branch:
    cond_text: str
    then_body: tuple
    else_body: tuple = ()

    @property
    def is_early_exit_guard(self) -> bool:
        """``if (gx >= n) return;`` style bounds guards."""
        return (
            len(self.then_body) == 1
            and isinstance(self.then_body[0], Return)
            and not self.else_body
        )


Node = object  # union of the dataclasses above


class ParseError(ValueError):
    pass


_FOR_RE = re.compile(
    r"for\s*\(\s*(?:(?:const\s+)?(?:unsigned\s+)?(?:int|long|size_t)\s+)?"
    r"([A-Za-z_][A-Za-z_0-9]*)\s*=\s*([^;]*);\s*"
    r"\1\s*(?:<=?)\s*([^;]*);\s*(.*)$",
    re.DOTALL,
)


def _skip_ws(text: str, i: int) -> int:
    n = len(text)
    while i < n and text[i].isspace():
        i += 1
    return i


def _match_paren(text: str, i: int) -> int:
    depth = 0
    for j in range(i, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j
    raise ParseError(f"unbalanced parentheses at {i}")


def _match_brace(text: str, i: int) -> int:
    depth = 0
    for j in range(i, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    raise ParseError(f"unbalanced braces at {i}")


def _find_semicolon(text: str, i: int) -> int:
    """Next ';' at bracket depth 0 (skips (), [])."""
    depth = 0
    for j in range(i, len(text)):
        c = text[j]
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == ";" and depth == 0:
            return j
    raise ParseError(f"missing semicolon after {text[i:i+40]!r}")


def parse_block(text: str) -> tuple:
    """Parse a brace-free statement sequence into nodes."""
    nodes: list[Node] = []
    i = 0
    n = len(text)
    pending_pragma: str | None = None
    while True:
        i = _skip_ws(text, i)
        if i >= n:
            break
        # pragma line
        if text[i] == "#":
            j = text.find("\n", i)
            j = n if j == -1 else j
            pending_pragma = text[i:j].strip()
            nodes.append(Pragma(pending_pragma))
            i = j
            continue
        # nested bare block
        if text[i] == "{":
            close = _match_brace(text, i)
            nodes.extend(parse_block(text[i + 1 : close]))
            i = close + 1
            continue
        if text.startswith("for", i) and re.match(r"for\s*\(", text[i:]):
            node, i = _parse_for(text, i, pending_pragma)
            # drop the Pragma node we already attached to the loop
            if pending_pragma is not None and nodes and isinstance(nodes[-1], Pragma):
                nodes.pop()
            pending_pragma = None
            nodes.append(node)
            continue
        if text.startswith("if", i) and re.match(r"if\s*\(", text[i:]):
            node, i = _parse_if(text, i)
            nodes.append(node)
            pending_pragma = None
            continue
        if text.startswith("return", i) and re.match(r"return\b", text[i:]):
            semi = _find_semicolon(text, i)
            nodes.append(Return())
            i = semi + 1
            continue
        # declaration or expression statement
        semi = _find_semicolon(text, i)
        stmt = text[i:semi].strip()
        node = _parse_simple(stmt)
        if node is not None:
            nodes.append(node)
        pending_pragma = None
        i = semi + 1
    return tuple(nodes)


def _parse_statement_or_block(text: str, i: int) -> tuple[tuple, int]:
    """Parse `{...}` or a single statement; return (nodes, next_index)."""
    i = _skip_ws(text, i)
    if i < len(text) and text[i] == "{":
        close = _match_brace(text, i)
        return parse_block(text[i + 1 : close]), close + 1
    # single statement (possibly a nested for/if)
    if text.startswith("for", i) and re.match(r"for\s*\(", text[i:]):
        node, j = _parse_for(text, i, None)
        return (node,), j
    if text.startswith("if", i) and re.match(r"if\s*\(", text[i:]):
        node, j = _parse_if(text, i)
        return (node,), j
    if text.startswith("return", i):
        semi = _find_semicolon(text, i)
        return (Return(),), semi + 1
    semi = _find_semicolon(text, i)
    node = _parse_simple(text[i:semi].strip())
    return ((node,) if node is not None else ()), semi + 1


def _parse_for(text: str, i: int, pragma: str | None) -> tuple[Loop, int]:
    paren = text.index("(", i)
    close = _match_paren(text, paren)
    header = text[paren : close + 1]
    m = _FOR_RE.match(text[i : close + 1])
    if m is None:
        # Unrecognized loop form: keep structure with unknown bound.
        var, start, bound, step = "_unknown", "0", "", ""
    else:
        var, start, bound, step = (g.strip() for g in m.groups())
        bound = bound.strip()
        step = step.strip().rstrip(")")
    body, j = _parse_statement_or_block(text, close + 1)
    return Loop(var=var, start_text=start, bound_text=bound, step_text=step,
                body=body, pragma=pragma), j


def _parse_if(text: str, i: int) -> tuple[Branch, int]:
    paren = text.index("(", i)
    close = _match_paren(text, paren)
    cond = text[paren + 1 : close].strip()
    then_body, j = _parse_statement_or_block(text, close + 1)
    k = _skip_ws(text, j)
    else_body: tuple = ()
    if text.startswith("else", k) and re.match(r"else\b", text[k:]):
        else_body, j = _parse_statement_or_block(text, k + 4)
    return Branch(cond_text=cond, then_body=then_body, else_body=else_body), j


_SHARED_RE = re.compile(
    r"__shared__\s+(float|double|int|long long)\s+"
    r"([A-Za-z_][A-Za-z_0-9]*)\s*\[([^\]]*)\]"
)
_DECL_RE = re.compile(
    r"(?:const\s+)?(float|double|int|long long|long|unsigned|size_t)\s+"
    r"([A-Za-z_][A-Za-z_0-9]*)\s*(?:=\s*(.*))?$",
    re.DOTALL,
)


def _parse_simple(stmt: str) -> Node | None:
    if not stmt:
        return None
    m = _SHARED_RE.match(stmt)
    if m:
        return SharedDecl(type_name=m.group(1), name=m.group(2), size_text=m.group(3))
    m = _DECL_RE.match(stmt)
    if m and "[" not in (m.group(2) or ""):
        init = (m.group(3) or "").strip()
        return Decl(type_name=m.group(1), name=m.group(2), init_text=init)
    return ExprStmt(stmt)


def walk(nodes: Sequence[Node]):
    """Pre-order traversal over parsed nodes."""
    for node in nodes:
        yield node
        if isinstance(node, Loop):
            yield from walk(node.body)
        elif isinstance(node, Branch):
            yield from walk(node.then_body)
            yield from walk(node.else_body)


@dataclass(frozen=True)
class ParamInfo:
    """One kernel parameter."""

    name: str
    type_name: str
    is_pointer: bool
    is_const: bool


def parse_params(params_text: str) -> list[ParamInfo]:
    """Parse a kernel's parameter list text."""
    out: list[ParamInfo] = []
    for raw in _split_top_commas(params_text):
        raw = raw.strip()
        if not raw:
            continue
        is_const = "const " in raw or raw.startswith("const")
        is_ptr = "*" in raw
        cleaned = (
            raw.replace("__restrict__", " ")
            .replace("const", " ")
            .replace("*", " ")
            .strip()
        )
        parts = cleaned.split()
        if len(parts) < 2:
            continue
        name = parts[-1]
        type_name = " ".join(parts[:-1])
        out.append(
            ParamInfo(name=name, type_name=type_name, is_pointer=is_ptr, is_const=is_const)
        )
    return out


def _split_top_commas(text: str) -> list[str]:
    parts = []
    depth = 0
    cur = []
    for c in text:
        if c in "([<":
            depth += 1
        elif c in ")]>":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return parts
