"""F-store — segment codec: legacy JSON segments vs packed binary + mmap.

The PR-5-era store kept each segment as one JSON document, so *any* read —
even a single-entry probe — paid a full-file parse. The packed binary
codec (``repro.store.base``) front-loads a tiny struct header and an entry
index; attaching a segment mmaps it and parses only the index, and each
requested entry decodes exactly its own blob. This bench builds one
store-realistic segment (4 096 entries, ~1.5 KB each) in both layouts and
times the access patterns the stores actually issue:

* **attach + 1 entry** — a fresh process probing a warm on-disk store,
  the dominant shard/CI pattern. Asserted ≥5× faster on binary.
* **warm view, per entry** — repeated probes through the in-process view
  cache (legacy wins by construction: its eager parse already paid for
  every entry).
* **whole segment** — full decode, the merge/manifest pattern. Binary
  pays a per-entry ``json.loads`` where legacy parsed one document, so it
  loses this row; merges are rare and batched, probes are constant, which
  is exactly the trade the codec makes.
"""

from __future__ import annotations

import json
import time

from repro.store.base import (
    _VIEW_CACHE,
    _VIEW_CACHE_LOCK,
    ArtifactStore,
    encode_segment,
)
from repro.util.tables import format_table

N_ENTRIES = 4096
ATTACH_REPS = 30
WARM_REPS = 2000
SEGMENT_KEY = "f" * 64


class _BenchStore(ArtifactStore):
    version = "bench-v1"
    segment_prefixes = ("bench-",)


def _entries() -> dict:
    pad = "x" * 1400  # bulk entries like profile counters / responses
    return {
        f"{i:064x}": {"text": f"Compute {i}", "n": i, "pad": pad}
        for i in range(N_ENTRIES)
    }


def _drop_views() -> None:
    with _VIEW_CACHE_LOCK:
        _VIEW_CACHE.clear()


def _build(tmp_path, entries):
    payload = {"version": _BenchStore.version, "key": SEGMENT_KEY}
    binary = _BenchStore(tmp_path / "binary")
    binary.root.mkdir(parents=True, exist_ok=True)
    binary._segment_path("bench-", SEGMENT_KEY).write_bytes(
        encode_segment(payload, entries)
    )
    legacy = _BenchStore(tmp_path / "legacy")
    legacy.root.mkdir(parents=True, exist_ok=True)
    legacy._legacy_segment_path("bench-", SEGMENT_KEY).write_text(
        json.dumps({**payload, "entries": entries}, sort_keys=True),
        encoding="utf-8",
    )
    return binary, legacy


def _get_one(store: _BenchStore, entry_key: str) -> dict:
    return store._get_entries(
        "bench-", SEGMENT_KEY, [entry_key], expect_key=SEGMENT_KEY
    )


def _time_attach_probe(store: _BenchStore, keys) -> float:
    start = time.perf_counter()
    for i in range(ATTACH_REPS):
        _drop_views()  # every rep is a fresh process attaching to the store
        got = _get_one(store, keys[i % len(keys)])
        assert len(got) == 1
    return (time.perf_counter() - start) / ATTACH_REPS


def _time_warm_probe(store: _BenchStore, keys) -> float:
    _drop_views()
    _get_one(store, keys[0])  # pay the attach outside the timed region
    start = time.perf_counter()
    for i in range(WARM_REPS):
        got = _get_one(store, keys[i % len(keys)])
        assert len(got) == 1
    return (time.perf_counter() - start) / WARM_REPS


def _time_whole_segment(store: _BenchStore) -> float:
    start = time.perf_counter()
    for _ in range(ATTACH_REPS):
        _drop_views()
        view = store._view_for("bench-", SEGMENT_KEY, expect_key=SEGMENT_KEY)
        assert len(view.entries()) == N_ENTRIES
    return (time.perf_counter() - start) / ATTACH_REPS


def test_segment_read_paths(tmp_path):
    entries = _entries()
    binary, legacy = _build(tmp_path, entries)
    keys = list(entries)[:: N_ENTRIES // 64]

    # The two layouts must serve identical values before we time anything.
    probe = keys[7]
    assert _get_one(binary, probe) == _get_one(legacy, probe) == {
        probe: entries[probe]
    }

    t_attach_bin = _time_attach_probe(binary, keys)
    t_attach_json = _time_attach_probe(legacy, keys)
    t_warm_bin = _time_warm_probe(binary, keys)
    t_warm_json = _time_warm_probe(legacy, keys)
    t_whole_bin = _time_whole_segment(binary)
    t_whole_json = _time_whole_segment(legacy)

    def us(t: float) -> str:
        return f"{t * 1e6:,.0f}"

    rows = [
        ["attach + 1 entry (fresh process)", us(t_attach_json),
         us(t_attach_bin), f"{t_attach_json / t_attach_bin:.1f}x"],
        ["warm view, per entry", us(t_warm_json), us(t_warm_bin),
         f"{t_warm_json / t_warm_bin:.1f}x"],
        ["whole segment decode", us(t_whole_json), us(t_whole_bin),
         f"{t_whole_json / t_whole_bin:.1f}x"],
    ]
    print()
    print(format_table(
        ["read pattern", "JSON segment (us)", "binary segment (us)",
         "binary speedup"],
        rows,
        title=f"Segment codec: {N_ENTRIES} entries, one segment",
    ))

    # The load-bearing claim: a cold attach serving one entry must not pay
    # the whole-segment parse. 5x is the floor; the margin grows with
    # segment size.
    assert t_attach_json / t_attach_bin >= 5.0, (
        f"single-entry attach speedup {t_attach_json / t_attach_bin:.1f}x "
        "< 5x floor"
    )


def test_batched_puts_vs_per_put_flush(tmp_path):
    """One deferred flush per batch vs a read-merge-write per put."""
    n = 384
    items = {
        f"{i:064x}": {"text": f"Compute {i}", "n": i} for i in range(n)
    }
    payload = {"version": _BenchStore.version, "key": SEGMENT_KEY}

    eager = _BenchStore(tmp_path / "eager")
    start = time.perf_counter()
    for key, value in items.items():
        eager._merge_entries(
            "bench-", SEGMENT_KEY, payload, {key: value},
            expect_key=SEGMENT_KEY,
        )
    t_eager = time.perf_counter() - start

    batched = _BenchStore(tmp_path / "batched")
    start = time.perf_counter()
    with batched.deferred():
        for key, value in items.items():
            batched._merge_entries(
                "bench-", SEGMENT_KEY, payload, {key: value},
                expect_key=SEGMENT_KEY,
            )
    t_batched = time.perf_counter() - start

    # Identical segments either way — batching changes cost, not content.
    seg = "bench-" + SEGMENT_KEY[:32] + ".bin"
    assert (eager.root / seg).read_bytes() == (batched.root / seg).read_bytes()

    print()
    print(format_table(
        ["write pattern", "total (ms)", "per put (us)"],
        [
            ["per-put flush", f"{t_eager * 1e3:,.1f}",
             f"{t_eager / n * 1e6:,.0f}"],
            ["one deferred batch", f"{t_batched * 1e3:,.1f}",
             f"{t_batched / n * 1e6:,.0f}"],
        ],
        title=f"{n} puts into one segment",
    ))
    assert t_batched < t_eager
