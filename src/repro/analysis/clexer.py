"""Lexer for C/CUDA/OpenMP source text.

The static analyser works from *source text only* (like the paper's LLMs):
this module produces a token stream with comments and string literals
stripped, preprocessor lines captured separately, and positions preserved
for error reporting.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator


class TokKind(str, enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    PRAGMA = "pragma"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r})"


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<pragma>\#[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<number>
        0[xX][0-9a-fA-F]+[uUlL]*
      | (?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[fFlLuU]*
    )
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct><<<|>>>|<<=|>>=|\.\.\.|->|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<|>>|<=|>=|==|!=|&&|\|\||[+\-*/%&|^~!<>=?:;,.(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


def lex(source: str) -> list[Token]:
    """Tokenize C-ish source. Unknown bytes are skipped (robustness over
    strictness: the analyser must not crash on odd input)."""
    out: list[Token] = []
    pos = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch.isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            pos += 1  # skip unrecognized byte
            continue
        kind = m.lastgroup
        text = m.group()
        if kind == "comment":
            pos = m.end()
            continue
        if kind == "pragma":
            out.append(Token(TokKind.PRAGMA, text, pos))
        elif kind == "string":
            out.append(Token(TokKind.STRING, text, pos))
        elif kind == "char":
            out.append(Token(TokKind.CHAR, text, pos))
        elif kind == "number":
            out.append(Token(TokKind.NUMBER, text, pos))
        elif kind == "ident":
            out.append(Token(TokKind.IDENT, text, pos))
        else:
            out.append(Token(TokKind.PUNCT, text, pos))
        pos = m.end()
    return out


def strip_comments(source: str) -> str:
    """Remove // and /* */ comments (string-literal aware)."""
    out: list[str] = []
    i = 0
    n = len(source)
    while i < n:
        two = source[i : i + 2]
        if two == "//":
            j = source.find("\n", i)
            i = n if j == -1 else j
        elif two == "/*":
            j = source.find("*/", i + 2)
            i = n if j == -1 else j + 2
        elif source[i] == '"':
            j = i + 1
            while j < n and source[j] != '"':
                j += 2 if source[j] == "\\" else 1
            out.append(source[i : min(j + 1, n)])
            i = j + 1
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


def number_value(text: str) -> float:
    """Parse a numeric literal's value (suffixes stripped)."""
    t = text.rstrip("fFlLuU")
    if t.lower().startswith("0x"):
        return float(int(t, 16))
    return float(t)


def number_is_float(text: str) -> bool:
    """True when the literal is floating point."""
    if text.lower().startswith("0x"):
        return False
    return "." in text or "e" in text.lower() or text.endswith(("f", "F"))


def number_is_f32(text: str) -> bool:
    """True when the literal is single precision (``f`` suffix)."""
    return number_is_float(text) and text.endswith(("f", "F"))
