"""Tests for the generic artifact store and the text-artifact pipeline.

Three contracts:

* **Store mechanics** (shared with :class:`ProfileStore` through the
  :class:`ArtifactStore` base): round trips are byte-exact, corrupt or
  version-skewed segments read as misses and are repaired by the next
  put, eviction is oldest-segment-first across the whole segment family,
  and a shared root honors one size bound.
* **Invisibility**: samples, token counts, and trained merges are
  byte-identical with the cache enabled, disabled, cold, or warm.
* **Render-once**: a multi-device matrix sweep renders and token-counts
  each program exactly once; a warm cache, zero times.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.dataset.build import build_sample, build_samples
from repro.dataset import text as text_mod
from repro.dataset.text import program_texts, rendered_sources
from repro.gpusim import device_for
from repro.gpusim.store import ProfileStore
from repro.kernels.corpus import build_corpus
from repro.store.base import ArtifactStore
from repro.store.text import (
    TEXT_VERSION,
    ArtifactCache,
    RenderStore,
    TokenizerStore,
    active_artifact_cache,
    program_text_key,
    reset_active_artifact_cache,
    set_active_artifact_cache,
    tokenizer_train_key,
)
from repro.tokenizer.bpe import BpeTokenizer
from repro.roofline.hardware import GPU_DATABASE

MERGES = [("a", "b"), ("ab", "c"), (" ", "f")]


def read_segment(path):
    """Decode one (binary or legacy) segment into the PR-5-era dict shape:
    the payload keys plus an ``entries`` dict."""
    from repro.store.base import _segment_view

    view = _segment_view(path)
    assert view is not None, f"unreadable segment {path}"
    data = dict(view.payload)
    data["entries"] = view.entries()
    return data


def write_segment(path, data):
    """Re-encode a ``read_segment``-shaped dict as a binary segment."""
    from repro.store.base import encode_segment

    payload = {k: v for k, v in data.items() if k != "entries"}
    path.write_bytes(encode_segment(payload, data["entries"]))


@pytest.fixture()
def small_corpus():
    return build_corpus(8, 5)


@pytest.fixture()
def small_tokenizer():
    return BpeTokenizer(merges=list(MERGES))


@pytest.fixture()
def fresh_text_memos():
    """Snapshot/clear the in-process text memos around a test."""
    saved_sources = dict(text_mod._SOURCE_MEMO)
    saved_counts = dict(text_mod._COUNT_MEMO)
    text_mod.clear_text_memos()
    yield
    text_mod.clear_text_memos()
    text_mod._SOURCE_MEMO.update(saved_sources)
    text_mod._COUNT_MEMO.update(saved_counts)


class TestSharedBase:
    def test_every_store_shares_the_base(self):
        for cls in (ProfileStore, TokenizerStore, RenderStore):
            assert issubclass(cls, ArtifactStore)
        # The eviction/write/read machinery is inherited, not reimplemented.
        for name in ("_write_segment", "_read_segment", "evict", "clear",
                     "size_bytes"):
            for cls in (ProfileStore, TokenizerStore, RenderStore):
                assert getattr(cls, name) is getattr(ArtifactStore, name)

    def test_profile_segments_keep_payload_shape(self, tmp_path):
        # The binary codec must keep recording exactly the pre-refactor
        # payload shape, so segment metadata stays forward-portable.
        from repro.gpusim import profile_corpus
        from repro.gpusim.store import PROFILER_VERSION, device_profile_key

        corpus = build_corpus(3, 2)
        device = device_for(next(iter(GPU_DATABASE.values())))
        store = ProfileStore(tmp_path / "ps")
        profile_corpus(corpus, device, store=store)
        path = store._profiles_path(device_profile_key(device))
        data = read_segment(path)
        assert set(data) == {"version", "key", "device", "entries"}
        assert data["version"] == PROFILER_VERSION
        assert data["key"] == device_profile_key(device)
        assert path.name == f"profiles-{device_profile_key(device)[:32]}.bin"

    def test_legacy_json_segment_dir_keeps_hitting(self, tmp_path):
        # A PR-5-era store dir (whole-JSON segments) must serve reads
        # without a flag day; the next put migrates it to binary.
        from repro.store.text import TEXT_VERSION

        binary = TokenizerStore(tmp_path / "ac")
        binary.put_merges("k", MERGES)
        seg = read_segment(binary._tokenizers_path())
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        legacy_path = legacy_dir / binary._tokenizers_path().with_suffix(
            ".json"
        ).name
        legacy_path.write_text(json.dumps(seg), encoding="utf-8")

        store = TokenizerStore(legacy_dir)
        assert store.get_merges("k") == MERGES
        store.put_merges("k2", MERGES[:1])  # migrate: binary written …
        assert store._tokenizers_path().is_file()
        assert not legacy_path.exists()  # … and the legacy twin removed
        assert store.get_merges("k") == MERGES
        assert store.get_merges("k2") == MERGES[:1]
        migrated = read_segment(store._tokenizers_path())
        assert migrated["version"] == TEXT_VERSION
        assert set(migrated["entries"]) == {"k", "k2"}


class TestTokenizerStore:
    def test_round_trip(self, tmp_path):
        store = TokenizerStore(tmp_path / "ac")
        assert store.get_merges("k") is None
        store.put_merges("k", MERGES)
        assert store.get_merges("k") == MERGES

    def test_multiple_keys_share_one_segment(self, tmp_path):
        store = TokenizerStore(tmp_path / "ac")
        store.put_merges("k1", MERGES)
        store.put_merges("k2", MERGES[:1])
        assert store.get_merges("k1") == MERGES
        assert store.get_merges("k2") == MERGES[:1]
        assert len(store._segment_files()) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = TokenizerStore(tmp_path / "ac")
        store.put_merges("good", MERGES)
        path = store._tokenizers_path()
        data = read_segment(path)
        data["entries"]["bad-shape"] = [["a", "b", "c"]]
        data["entries"]["bad-type"] = "zap"
        write_segment(path, data)
        assert store.get_merges("bad-shape") is None
        assert store.get_merges("bad-type") is None
        assert store.get_merges("good") == MERGES

    def test_corrupt_segment_reads_as_miss_and_put_repairs(self, tmp_path):
        store = TokenizerStore(tmp_path / "ac")
        store.put_merges("k", MERGES)
        store._tokenizers_path().write_text("{ not json", encoding="utf-8")
        assert store.get_merges("k") is None
        store.put_merges("k", MERGES)
        assert store.get_merges("k") == MERGES

    def test_version_skew_reads_as_miss(self, tmp_path):
        store = TokenizerStore(tmp_path / "ac")
        store.put_merges("k", MERGES)
        path = store._tokenizers_path()
        data = read_segment(path)
        data["version"] = "text-artifacts-v999"
        write_segment(path, data)
        assert store.get_merges("k") is None


class TestRenderStore:
    def test_sources_round_trip_byte_exact(self, tmp_path):
        store = RenderStore(tmp_path / "ac")
        sources = {
            "k1": "int main() {\n\treturn 0;\n}\n",
            "k2": "// weird: é \\ \" '\n\x0b",
            "k3": "",
        }
        store.put_sources(sources)
        assert store.get_sources(list(sources)) == sources
        assert store.get_sources(["missing"]) == {}

    def test_counts_round_trip_per_tokenizer(self, tmp_path):
        store = RenderStore(tmp_path / "ac")
        store.put_token_counts("tok-a", {"k1": 11, "k2": 22})
        store.put_token_counts("tok-b", {"k1": 99})
        assert store.get_token_counts("tok-a", ["k1", "k2"]) == {
            "k1": 11, "k2": 22,
        }
        assert store.get_token_counts("tok-b", ["k1", "k2"]) == {"k1": 99}
        assert store.get_token_counts("tok-c", ["k1"]) == {}

    def test_count_segment_guards_its_tokenizer_key(self, tmp_path):
        store = RenderStore(tmp_path / "ac")
        store.put_token_counts("tok-a", {"k1": 11})
        path = store._counts_path("tok-a")
        data = read_segment(path)
        data["key"] = "tok-other"
        write_segment(path, data)
        assert store.get_token_counts("tok-a", ["k1"]) == {}

    def test_non_int_counts_read_as_misses(self, tmp_path):
        store = RenderStore(tmp_path / "ac")
        store.put_token_counts("t", {"k1": 11})
        path = store._counts_path("t")
        data = read_segment(path)
        data["entries"]["k2"] = "12"
        data["entries"]["k3"] = True
        write_segment(path, data)
        assert store.get_token_counts("t", ["k1", "k2", "k3"]) == {"k1": 11}


class TestSharedLifecycle:
    def _populate(self, root):
        """One segment of every text kind, oldest → newest."""
        tokenizers = TokenizerStore(root)
        renders = RenderStore(root)
        tokenizers.put_merges("k", MERGES)
        renders.put_sources({"k1": "x" * 64})
        renders.put_token_counts("tok-a", {"k1": 1})
        renders.put_token_counts("tok-b", {"k1": 2})
        return tokenizers, renders

    def test_eviction_is_oldest_first_across_kinds(self, tmp_path):
        root = tmp_path / "ac"
        tokenizers, renders = self._populate(root)
        files = renders._segment_files()
        assert len(files) == 4
        oldest = tokenizers._tokenizers_path()
        past = time.time() - 3600
        os.utime(oldest, (past, past))

        bound = renders.size_bytes() - 1
        removed = renders.evict(bound)
        assert removed >= 1
        assert not oldest.exists()  # the tokenizer segment went first
        assert renders.size_bytes() <= bound

    def test_one_bound_spans_both_stores(self, tmp_path):
        root = tmp_path / "ac"
        cache = ArtifactCache(root, max_bytes=1)
        cache.tokenizers.put_merges("k", MERGES)
        cache.renders.put_sources({"k1": "y" * 256})
        # Each put re-applied the bound over the whole family.
        assert cache.size_bytes() <= 1

    def test_clear_spans_both_stores_and_leaves_foreign_files(self, tmp_path):
        root = tmp_path / "ac"
        _, renders = self._populate(root)
        foreign = root / "README.txt"
        foreign.write_text("not a segment")
        renders.clear()
        assert foreign.exists()
        assert renders._segment_files() == []

    def test_missing_root_reads_empty(self, tmp_path):
        cache = ArtifactCache(tmp_path / "never")
        assert cache.tokenizers.get_merges("k") is None
        assert cache.renders.get_sources(["k"]) == {}
        assert cache.manifest().source_entries == 0
        assert cache.evict(10) == 0
        cache.clear()  # no-op, no crash

    def test_manifest_bytes_match_eviction_view(self, tmp_path):
        # Version-skewed segments contribute no *entries* but still hold
        # disk space the eviction bound sees — the manifest must report
        # the bytes that are actually there, not just the valid ones.
        root = tmp_path / "ac"
        _, renders = self._populate(root)
        for path in renders._segment_files():
            data = read_segment(path)
            data["version"] = "text-artifacts-v999"
            write_segment(path, data)
        m = ArtifactCache(root).manifest()
        assert m.tokenizer_entries + m.source_entries + m.count_entries == 0
        assert m.total_bytes == renders.size_bytes() > 0
        assert m.stale_segments == 4  # surfaced for the cache manifest

    def test_manifest_counts(self, tmp_path):
        root = tmp_path / "ac"
        self._populate(root)
        m = ArtifactCache(root).manifest()
        assert m.version == TEXT_VERSION
        assert m.tokenizer_entries == 1
        assert m.source_entries == 1
        assert m.count_entries == 2
        assert m.count_tokenizers == 2
        assert m.total_bytes > 0
        rendered = m.render()
        assert TEXT_VERSION in rendered
        assert "sources" in rendered


class TestContentKeys:
    def test_text_key_distinguishes_programs(self, small_corpus):
        keys = {program_text_key(p) for p in small_corpus.programs}
        assert len(keys) == len(small_corpus.programs)

    def test_text_key_covers_render_knobs(self, small_corpus):
        import dataclasses

        p = small_corpus.programs[0]
        q = dataclasses.replace(p, host_verbosity=(p.host_verbosity + 1) % 3)
        assert program_text_key(p) != program_text_key(q)

    def test_text_key_is_version_pinned(self, small_corpus, monkeypatch):
        from repro.store import text as stext

        before = stext._compute_text_key(small_corpus.programs[0])
        monkeypatch.setattr(stext, "TEXT_VERSION", "text-artifacts-v999")
        assert stext._compute_text_key(small_corpus.programs[0]) != before

    def test_tokenizer_train_key_depends_on_inputs(self, small_corpus):
        programs = list(small_corpus.programs[:4])
        base = tokenizer_train_key(programs, 100)
        assert tokenizer_train_key(programs, 101) != base
        assert tokenizer_train_key(programs[:3], 100) != base
        assert tokenizer_train_key(programs, 100) == base


class TestTextPipeline:
    def test_results_identical_with_without_and_across_cache_states(
        self, small_corpus, small_tokenizer, tmp_path, fresh_text_memos
    ):
        programs = list(small_corpus.programs)
        bare = program_texts(programs, small_tokenizer, cache=None)
        text_mod.clear_text_memos()
        cache = ArtifactCache(tmp_path / "ac")
        cold = program_texts(programs, small_tokenizer, cache=cache)
        text_mod.clear_text_memos()
        warm = program_texts(programs, small_tokenizer, cache=cache)
        assert cold == bare
        assert warm == bare

    def test_warm_cache_renders_and_counts_nothing(
        self, small_corpus, small_tokenizer, tmp_path, fresh_text_memos,
        monkeypatch,
    ):
        programs = list(small_corpus.programs)
        cache = ArtifactCache(tmp_path / "ac")
        expected = program_texts(programs, small_tokenizer, cache=cache)
        text_mod.clear_text_memos()

        def _boom(*a, **k):
            raise AssertionError("warm cache must not recompute")

        monkeypatch.setattr(text_mod, "render_program", _boom)
        monkeypatch.setattr(BpeTokenizer, "count_tokens", _boom)
        assert program_texts(programs, small_tokenizer, cache=cache) == expected

    def test_counts_match_tokenizer_exactly(
        self, small_corpus, small_tokenizer, fresh_text_memos
    ):
        programs = list(small_corpus.programs[:3])
        texts = program_texts(programs, small_tokenizer, cache=None)
        for artifact in texts.values():
            assert artifact.token_count == small_tokenizer.count_tokens(
                artifact.source
            )

    def test_samples_identical_with_and_without_text_pass(
        self, small_corpus, small_tokenizer, fresh_text_memos
    ):
        device = device_for(next(iter(GPU_DATABASE.values())))
        via_pipeline = build_samples(
            small_corpus, device, small_tokenizer
        )
        direct = [
            build_sample(p, device, small_tokenizer)
            for p in small_corpus.programs
        ]
        assert via_pipeline == direct

    def test_sources_shared_between_tokenizer_training_and_dataset(
        self, tmp_path, fresh_text_memos
    ):
        # Training through rendered_sources seeds the same store segment
        # the dataset pass reads: one render, two consumers.
        from repro.tokenizer.pretrained import (
            train_corpus_tokenizer,
            training_programs,
        )

        cache = ArtifactCache(tmp_path / "ac")
        train_corpus_tokenizer(sample=6, num_merges=30, cache=cache)
        chosen = training_programs(sample=6)
        stored = cache.renders.get_sources(
            [program_text_key(p) for p in chosen]
        )
        assert len(stored) == len(chosen)

    def test_warm_store_trains_zero_tokenizers(
        self, tmp_path, fresh_text_memos, monkeypatch
    ):
        from repro.tokenizer.pretrained import train_corpus_tokenizer

        cache = ArtifactCache(tmp_path / "ac")
        first = train_corpus_tokenizer(sample=6, num_merges=30, cache=cache)

        def _boom(*a, **k):
            raise AssertionError("warm store must not retrain")

        monkeypatch.setattr(BpeTokenizer, "train", _boom)
        again = train_corpus_tokenizer(sample=6, num_merges=30, cache=cache)
        assert again.merges == first.merges
        assert again.digest() == first.digest()

    def test_different_budget_misses_the_store(
        self, tmp_path, fresh_text_memos
    ):
        from repro.tokenizer.pretrained import train_corpus_tokenizer

        cache = ArtifactCache(tmp_path / "ac")
        small = train_corpus_tokenizer(sample=6, num_merges=10, cache=cache)
        large = train_corpus_tokenizer(sample=6, num_merges=30, cache=cache)
        assert len(small.merges) == 10
        assert len(large.merges) == 30


class TestRenderOnceMatrix:
    @pytest.fixture()
    def fresh_scenario_memo(self):
        from repro.eval import matrix as matrix_mod

        saved = dict(matrix_mod._SCENARIO_MEMO)
        matrix_mod._SCENARIO_MEMO.clear()
        yield
        matrix_mod._SCENARIO_MEMO.clear()
        matrix_mod._SCENARIO_MEMO.update(saved)

    def test_multi_device_sweep_renders_each_program_once(
        self, fresh_text_memos, fresh_scenario_memo, monkeypatch, tokenizer
    ):
        from repro.eval.matrix import scenario_samples
        from repro.kernels.corpus import default_corpus

        uids = tuple(p.uid for p in default_corpus().programs[7:12])
        gpus = list(GPU_DATABASE.values())[:3]

        renders = []
        real_render = text_mod.render_program
        monkeypatch.setattr(
            text_mod,
            "render_program",
            lambda p: renders.append(p.uid) or real_render(p),
        )
        counts = []
        real_count = BpeTokenizer.count_tokens
        monkeypatch.setattr(
            BpeTokenizer,
            "count_tokens",
            lambda self, text: counts.append(1) or real_count(self, text),
        )

        per_gpu = [scenario_samples(g, uids=uids) for g in gpus]

        # Device-independent text work ran once per program, not once per
        # (program, device); the per-device profiles still differ.
        assert sorted(renders) == sorted(uids)
        assert len(counts) == len(uids)
        for samples in per_gpu[1:]:
            for a, b in zip(per_gpu[0], samples):
                assert a.source == b.source
                assert a.token_count == b.token_count
        names = {s.gpu_name for samples in per_gpu for s in samples}
        assert len(names) == len(gpus)


class TestActiveCache:
    def test_env_var_activates_cache(
        self, small_corpus, small_tokenizer, tmp_path, monkeypatch,
        fresh_text_memos,
    ):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "env-ac"))
        assert active_artifact_cache() is not None
        program_texts(
            list(small_corpus.programs[:2]), small_tokenizer
        )  # default: active cache
        manifest = ArtifactCache(tmp_path / "env-ac").manifest()
        assert manifest.source_entries == 2
        assert manifest.count_entries == 2

    def test_empty_env_means_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "")
        assert active_artifact_cache() is None

    def test_set_active_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "ignored"))
        set_active_artifact_cache(None)
        try:
            assert active_artifact_cache() is None
        finally:
            reset_active_artifact_cache()

    def test_env_max_bytes_parsed(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "ac"))
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE_MAX_BYTES", "4096")
        cache = active_artifact_cache()
        assert cache is not None
        assert cache.max_bytes == 4096
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE_MAX_BYTES", "junk")
        with pytest.warns(RuntimeWarning, match="size bound"):
            assert active_artifact_cache().max_bytes is None
