"""Parallel, cached evaluation engine.

Every experiment in the repo reduces to a grid of *(model, item)* work units:
build a prompt, get one completion, parse one word. This module owns that
hot path:

* :class:`EvalEngine` shards work units across a thread pool
  (:mod:`repro.util.parallel`) with deterministic, submission-order results —
  any ``jobs`` value produces the same :class:`~repro.eval.runner.RunResult`
  as the sequential loop it replaced.
* Completions are memoized in a content-addressed store. Keys are
  :func:`cache_key` digests over the *full* model capability profile, the
  prompt text, and the sampling parameters, so any calibration change or
  prompt edit invalidates exactly the affected entries, and keys are stable
  across processes and machines (SHA-256, no interpreter salt).
* Stores are injectable (:class:`MemoryResponseStore` for tests and warm
  in-process sweeps, :class:`DiskResponseStore` for cross-run reuse), in the
  spirit of :mod:`repro.dataset.store`'s JSON persistence.

The emulated models are deterministic, so a cache hit is *exact*: the stored
response text and token usage equal what the model would recompute.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Protocol, Sequence

from repro.llm.base import LlmModel, LlmResponse
from repro.llm.config import ModelConfig
from repro.llm.pricing import Usage, UsageMeter
from repro.util.hashing import stable_hash_bytes
from repro.util.parallel import parallel_map, resolve_jobs

#: Bump when the cached-response record layout changes.
CACHE_SCHEMA_VERSION = "repro-response-v1"

#: Environment override for the on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache directory (relative to the working directory).
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir() -> Path:
    """Where the CLI keeps its response cache (``$REPRO_CACHE_DIR`` wins)."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIRNAME)


@lru_cache(maxsize=256)
def _config_digest(config: ModelConfig) -> bytes:
    """Digest of every :class:`ModelConfig` field, memoized per config."""
    return stable_hash_bytes(
        *(getattr(config, f.name) for f in dataclasses.fields(config))
    )


def cache_key(
    config: ModelConfig,
    prompt: str,
    temperature: float | None = None,
    top_p: float | None = None,
) -> str:
    """Content address of one completion.

    Hashes every :class:`ModelConfig` field (not just the name) so two
    calibrations of the same model never share entries; ``None`` sampling
    params hash distinctly from explicit values, mirroring
    :meth:`LlmModel.complete`'s defaulting. Keys are SHA-256 based —
    stable across processes and machines. This sits on the warm-cache hot
    path, hence the flat hashlib composition over the memoized config
    digest rather than a generic ``stable_hash_hex`` call.
    """
    h = hashlib.sha256()
    h.update(CACHE_SCHEMA_VERSION.encode("ascii"))
    h.update(_config_digest(config))
    data = prompt.encode("utf-8")
    h.update(len(data).to_bytes(8, "little"))
    h.update(data)
    h.update(repr((temperature, top_p)).encode("ascii"))
    return h.hexdigest()


@dataclass(frozen=True)
class CachedResponse:
    """The persistable payload of one completion."""

    text: str
    input_tokens: int
    output_tokens: int
    reasoning_tokens: int

    @classmethod
    def from_response(cls, response: LlmResponse) -> "CachedResponse":
        u = response.usage
        return cls(
            text=response.text,
            input_tokens=u.input_tokens,
            output_tokens=u.output_tokens,
            reasoning_tokens=u.reasoning_tokens,
        )

    def to_response(self, model_name: str) -> LlmResponse:
        return LlmResponse(
            text=self.text,
            usage=Usage(
                input_tokens=self.input_tokens,
                output_tokens=self.output_tokens,
                reasoning_tokens=self.reasoning_tokens,
            ),
            model_name=model_name,
        )

    def to_dict(self) -> dict:
        return {
            "text": self.text,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "reasoning_tokens": self.reasoning_tokens,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CachedResponse":
        return cls(
            text=data["text"],
            input_tokens=int(data["input_tokens"]),
            output_tokens=int(data["output_tokens"]),
            reasoning_tokens=int(data["reasoning_tokens"]),
        )


class ResponseStore(Protocol):
    """Injectable key → response storage."""

    def get(self, key: str) -> CachedResponse | None: ...

    def put(self, key: str, value: CachedResponse) -> None: ...

    def __len__(self) -> int: ...

    def clear(self) -> None: ...


class MemoryResponseStore:
    """In-process store (tests, single-run warm sweeps).

    Single dict get/set operations are atomic under the GIL, so the hot
    path is lock-free; the worst concurrent-writer outcome is two threads
    installing identical content for the same key.
    """

    def __init__(self) -> None:
        self._data: dict[str, CachedResponse] = {}

    def get(self, key: str) -> CachedResponse | None:
        return self._data.get(key)

    def put(self, key: str, value: CachedResponse) -> None:
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


class DiskResponseStore:
    """One JSON file per key, sharded by hex prefix.

    Writes are atomic (temp file + :func:`os.replace`), so concurrent
    writers — threads in one engine or separate processes sharing a cache
    directory — can only ever race to install identical content.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> CachedResponse | None:
        path = self._path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Missing or torn entry (bad JSON, bad UTF-8) == miss; a put
            # repairs it. JSONDecodeError and UnicodeDecodeError are both
            # ValueErrors.
            return None
        try:
            return CachedResponse.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, value: CachedResponse) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(
                json.dumps(value.to_dict(), sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            return  # unwritable store degrades to uncached, never crashes

    def _files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        try:
            return sorted(self.root.glob("??/*.json"))
        except OSError:
            return []  # shard dir vanished mid-scan (concurrent wipe)

    def __len__(self) -> int:
        return len(self._files())

    def size_bytes(self) -> int:
        total = 0
        for p in self._files():
            try:
                total += p.stat().st_size
            except OSError:
                continue  # entry wiped by a concurrent process
        return total

    def clear(self) -> None:
        # Remove only entry files and their (then-empty) shard dirs — never
        # the root wholesale: --cache-dir may point at a directory that
        # contains unrelated files.
        for path in self._files():
            try:
                path.unlink()
            except OSError:
                pass
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for stale in shard.glob("*.tmp.*"):
                try:
                    stale.unlink()
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass  # non-empty (foreign files): leave it


@dataclass
class CacheStats:
    """Hit/miss accounting for one engine; misses == new model completions."""

    hits: int = 0
    misses: int = 0
    uncached: int = 0  # completions issued with no store attached

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    @property
    def completions(self) -> int:
        """Completions actually computed by a model (not served from cache)."""
        return self.misses + self.uncached

    @property
    def total(self) -> int:
        return self.hits + self.misses + self.uncached

    def _bump(self, field_name: str) -> None:
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + 1)

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.completions} new completions"
        )


class EvalEngine:
    """Fans (model, item) work units over a worker pool, memoizing responses.

    One engine instance is meant to span a whole experiment (or several: a
    Table 1 run shares one engine across all models and RQs), so its
    :attr:`stats` describe the sweep and its store amortises repeated
    prompts across experiments.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        store: ResponseStore | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.stats = CacheStats()

    # -- single completion ---------------------------------------------------
    def complete(
        self,
        model: LlmModel,
        prompt: str,
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ) -> LlmResponse:
        """One completion, served from the store when possible."""
        if self.store is None:
            response = model.complete(
                prompt, temperature=temperature, top_p=top_p
            )
            self.stats._bump("uncached")
            return response
        key = cache_key(model.config, prompt, temperature, top_p)
        cached = self.store.get(key)
        if cached is not None:
            self.stats._bump("hits")
            return cached.to_response(model.name)
        response = model.complete(prompt, temperature=temperature, top_p=top_p)
        self.store.put(key, CachedResponse.from_response(response))
        self.stats._bump("misses")
        return response

    # -- batched evaluation --------------------------------------------------
    def run(
        self,
        model: LlmModel,
        items: Sequence[tuple[str, str, object]],
        *,
        temperature: float | None = None,
        top_p: float | None = None,
    ):
        """Evaluate ``items`` of (item_id, prompt, truth) against one model.

        Drop-in replacement for the old sequential loop in
        :mod:`repro.eval.runner`: identical records in identical order, and
        usage metered in item order so cost floats sum identically at any
        ``jobs``.
        """
        from repro.eval.runner import PredictionRecord, RunResult

        items = list(items)
        if not items:
            raise ValueError("no items to run")

        def one(item: tuple[str, str, object]) -> tuple[PredictionRecord, Usage]:
            item_id, prompt, truth = item
            response = self.complete(
                model, prompt, temperature=temperature, top_p=top_p
            )
            try:
                pred = response.boundedness()
            except ValueError:
                pred = None
            record = PredictionRecord(
                item_id=item_id,
                truth=truth,
                prediction=pred,
                response_text=response.text,
            )
            return record, response.usage

        pairs = parallel_map(one, items, jobs=self.jobs)
        meter = UsageMeter(model.config)
        for _, usage in pairs:
            meter.record(usage)
        return RunResult(
            model_name=model.name,
            records=tuple(record for record, _ in pairs),
            usage=meter.summary(),
        )
