"""Tests for the two-phase profiler and the persistent profile store.

The load-bearing invariant: phase 1 (symbolic trace) + phase 2 (per-device
finalize) must reproduce the seed single-pass profiler **bit-for-bit**, on
every database GPU, whether the profile came from a fresh walk, the
in-process digest memo, or a disk store round trip. A seed-faithful
reference implementation lives in this module and the hypothesis property
pins the equivalence over generated kernels.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    PROFILER_VERSION,
    ProfileStore,
    device_for,
    device_profile_key,
    finalize_profile,
    finalize_profiles,
    profile_corpus,
    profile_first_kernel,
    profile_kernel,
    profile_programs,
    program_profile_key,
    symbolic_trace,
)
from repro.gpusim.counters import ProfileCounters
from repro.gpusim.memory import aggregate_traffic, coalescing_quality
from repro.gpusim.profiler import (
    _PROFILE_MEMO,
    _TRACE_MEMO,
    _Walker,
    KernelProfile,
)
from repro.gpusim.store import active_profile_store, set_active_profile_store
from repro.gpusim.timing import estimate_time
from repro.kernels.corpus import build_corpus
from repro.kernels.ir import (
    ArrayDecl,
    Assign,
    Const,
    DType,
    For,
    If,
    Kernel,
    Let,
    ScalarParam,
    Store,
    add,
    aff,
    call,
    CallFn,
    load,
    mul,
    var,
)
from repro.kernels.launch import CommandLine, KernelInstance, plan_launch_1d
from repro.roofline.hardware import GPU_DATABASE
from repro.types import OpClass

ALL_DEVICES = [device_for(g) for g in GPU_DATABASE.values()]

F32 = DType.F32
I32 = DType.I32


def seed_profile(instance, cmdline, device, uid=""):
    """The seed repo's single-pass profiler, replicated verbatim.

    Walks and finalizes in one go — no trace, no pre-merged sites — so the
    two-phase path has an independent reference to be bit-identical to.
    """
    bindings = instance.resolve_bindings(cmdline)
    walker = _Walker(
        instance.kernel,
        bindings,
        instance.launch.total_threads,
        block_x=instance.launch.block.x,
        block_y=instance.launch.block.y,
    )
    acc = walker.run()
    read_b, write_b, useful_b, txn_b = aggregate_traffic(acc.sites, device)
    quality = coalescing_quality(useful_b, txn_b)
    rng = device.efficiency_stream(uid or instance.kernel.name)
    noise = rng.child("counter-noise")
    sigma = device.counter_noise_sigma

    def jitter(x):
        if x <= 0.0:
            return 0.0
        return x * noise.lognormal(0.0, sigma)

    ops = {oc: jitter(v) for oc, v in acc.ops.items()}
    dram_read = jitter(read_b)
    dram_write = jitter(write_b)
    dram_read = max(dram_read, 32.0 * device.sector_bytes)
    timing = estimate_time(
        ops=ops,
        sfu_ops=acc.sfu_ops,
        dram_bytes=dram_read + dram_write,
        coalescing=quality,
        device=device,
        rng=rng.child("timing"),
    )
    counters = ProfileCounters(
        kernel_name=instance.kernel.name,
        sp_flops=ops[OpClass.SP],
        dp_flops=ops[OpClass.DP],
        int_ops=ops[OpClass.INT],
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        time_s=timing.total_s,
    )
    return KernelProfile(counters=counters, timing=timing, coalescing=quality)


def make_instance(n, iters, taken, use_sfu):
    """A small but representative kernel: loop, branch, stencil-ish loads,
    an SFU call, and a store — every accumulator path exercised."""
    loop_body = (
        Assign("acc", add(var("acc"), load("x", aff("gx", ("k", 1))), F32), F32),
    )
    then_expr = (
        call(CallFn.SQRT, var("acc"), dtype=F32) if use_sfu
        else mul(var("acc"), var("acc"), F32)
    )
    body = (
        Let("acc", Const(0.0, F32), F32),
        For("k", "iters", loop_body),
        If(
            cond=add(var("acc"), Const(1.0, F32), F32),
            then=(Store("y", aff("gx"), then_expr, F32),),
            taken_fraction=taken,
        ),
        Store("z", aff("gx"), var("acc"), F32),
    )
    kernel = Kernel(
        name="propkern",
        arrays=(
            ArrayDecl("x", F32, "n"),
            ArrayDecl("y", F32, "n", is_output=True),
            ArrayDecl("z", F32, "n", is_output=True),
        ),
        params=(ScalarParam("iters", I32), ScalarParam("n", I32)),
        body=body,
        work_items="n",
    )
    cmdline = CommandLine(prog="p", flags=(("n", n), ("iters", iters)))
    instance = KernelInstance(
        kernel=kernel,
        launch=plan_launch_1d(n),
        binding_exprs=(("iters", "iters"), ("n", "n")),
    )
    return instance, cmdline


class TestTwoPhaseEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=32, max_value=1 << 20),
        iters=st.integers(min_value=1, max_value=512),
        taken=st.floats(min_value=0.0, max_value=1.0),
        use_sfu=st.booleans(),
    )
    def test_trace_finalize_matches_seed_on_all_gpus(
        self, n, iters, taken, use_sfu
    ):
        instance, cmdline = make_instance(n, iters, taken, use_sfu)
        trace = symbolic_trace(instance, cmdline)
        for device in ALL_DEVICES:
            expected = seed_profile(instance, cmdline, device, uid="prop-uid")
            assert finalize_profile(trace, device, uid="prop-uid") == expected
            assert profile_kernel(instance, cmdline, device, uid="prop-uid") == expected

    def test_corpus_programs_match_seed_on_all_gpus(self, corpus):
        for program in corpus.programs[::97]:
            for device in ALL_DEVICES:
                assert profile_first_kernel(program, device) == seed_profile(
                    program.first_kernel, program.cmdline, device, uid=program.uid
                )

    def test_default_uid_falls_back_to_kernel_name(self):
        instance, cmdline = make_instance(1024, 4, 0.5, False)
        assert profile_kernel(instance, cmdline) == seed_profile(
            instance, cmdline, ALL_DEVICES[0]
        )

    def test_vectorized_batch_finalize_matches_scalar(self, corpus):
        # The whole-batch numpy path must be indistinguishable from the
        # scalar per-trace path, profile for profile, on every device.
        programs = corpus.programs[::47]
        traces = [
            symbolic_trace(p.first_kernel, p.cmdline) for p in programs
        ]
        uids = [p.uid for p in programs]
        for device in ALL_DEVICES:
            batch = finalize_profiles(traces, device, uids=uids)
            for trace, uid, profile in zip(traces, uids, batch):
                assert profile == finalize_profile(trace, device, uid=uid)

    def test_batch_finalize_of_empty_batch(self):
        assert finalize_profiles([]) == []

    def test_trace_serialization_round_trips_bit_exactly(self):
        instance, cmdline = make_instance(1 << 18, 37, 0.31, True)
        trace = symbolic_trace(instance, cmdline)
        clone = type(trace).from_dict(json.loads(json.dumps(trace.to_dict())))
        assert clone == trace
        for device in ALL_DEVICES:
            assert finalize_profile(clone, device, uid="u") == finalize_profile(
                trace, device, uid="u"
            )


class TestContentKeys:
    def test_uid_distinguishes_identical_ir(self, corpus):
        # The uid keys the noise streams, so IR-identical programs with
        # different uids must never share a store entry.
        import dataclasses

        p = corpus.programs[0]
        q = dataclasses.replace(p, name=p.name + "-clone")
        assert p.first_kernel == q.first_kernel
        assert program_profile_key(p) != program_profile_key(q)

    def test_device_keys_distinct_per_spec(self):
        keys = {device_profile_key(d) for d in ALL_DEVICES}
        assert len(keys) == len(ALL_DEVICES)

    def test_version_in_keys(self, corpus, monkeypatch):
        from repro.gpusim import store as store_mod

        before = store_mod._compute_program_key(corpus.programs[0])
        monkeypatch.setattr(store_mod, "PROFILER_VERSION", "gpusim-profiler-v999")
        assert store_mod._compute_program_key(corpus.programs[0]) != before


@pytest.fixture()
def small_corpus():
    return build_corpus(8, 5)


@pytest.fixture()
def fresh_memos():
    """Snapshot/clear the in-process profile memos around a test."""
    saved_profiles = dict(_PROFILE_MEMO)
    saved_traces = dict(_TRACE_MEMO)
    _PROFILE_MEMO.clear()
    _TRACE_MEMO.clear()
    yield
    _PROFILE_MEMO.clear()
    _PROFILE_MEMO.update(saved_profiles)
    _TRACE_MEMO.clear()
    _TRACE_MEMO.update(saved_traces)


class TestProfileStore:
    def test_round_trip_bit_exact(self, small_corpus, tmp_path, fresh_memos):
        store = ProfileStore(tmp_path / "ps")
        device = ALL_DEVICES[1]
        first = profile_corpus(small_corpus, device, store=store)
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()
        second = profile_corpus(
            small_corpus, device, store=ProfileStore(tmp_path / "ps")
        )
        assert second == first

    def test_warm_store_walks_zero_kernels(
        self, small_corpus, tmp_path, fresh_memos, monkeypatch
    ):
        store = ProfileStore(tmp_path / "ps")
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()

        walks = []
        orig = _Walker.run
        monkeypatch.setattr(
            _Walker, "run", lambda self: walks.append(1) or orig(self)
        )
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        assert walks == []

    def test_warm_traces_cover_new_devices(
        self, small_corpus, tmp_path, fresh_memos, monkeypatch
    ):
        # A device never profiled still reuses persisted phase-1 traces.
        store = ProfileStore(tmp_path / "ps")
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()

        walks = []
        orig = _Walker.run
        monkeypatch.setattr(
            _Walker, "run", lambda self: walks.append(1) or orig(self)
        )
        fresh = profile_corpus(small_corpus, ALL_DEVICES[2], store=store)
        assert walks == []
        assert fresh == profile_corpus(small_corpus, ALL_DEVICES[2], store=None)

    def test_memo_is_digest_keyed_not_identity_keyed(self, fresh_memos):
        # Two structurally equal corpora share one profiling pass.
        a = build_corpus(6, 4)
        b = build_corpus(6, 4)
        assert a is not b
        first = profile_corpus(a, ALL_DEVICES[0], store=None)
        second = profile_corpus(b, ALL_DEVICES[0], store=None)
        assert second is first

    def test_corrupt_segments_read_as_misses(
        self, small_corpus, tmp_path, fresh_memos
    ):
        store = ProfileStore(tmp_path / "ps")
        device = ALL_DEVICES[0]
        expected = profile_corpus(small_corpus, device, store=store)
        segments = sorted((tmp_path / "ps").glob("*.bin"))
        assert segments
        for i, segment in enumerate(segments):
            if i % 3 == 0:
                segment.write_text("{ not json")
            elif i % 3 == 1:
                segment.write_text(json.dumps({"version": "other", "entries": {}}))
            else:
                segment.write_bytes(b"\x00\xff\x00")
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()
        again = profile_corpus(small_corpus, device, store=store)
        assert again == expected
        # ...and the re-put repaired the store for the next cold process.
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()
        assert store.get_profiles(
            device, [program_profile_key(p) for p in small_corpus.programs]
        )

    def test_partial_batches_merge_into_one_segment(
        self, small_corpus, tmp_path, fresh_memos
    ):
        store = ProfileStore(tmp_path / "ps")
        device = ALL_DEVICES[0]
        head = list(small_corpus.programs[:4])
        tail = list(small_corpus.programs[4:])
        profile_programs(head, device, store=store)
        profile_programs(tail, device, store=store)
        assert len(store) == len(small_corpus.programs)

    def test_eviction_is_oldest_first_and_bounded(
        self, small_corpus, tmp_path, fresh_memos
    ):
        import os
        import time

        store = ProfileStore(tmp_path / "ps")
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        oldest = store._profiles_path(device_profile_key(ALL_DEVICES[0]))
        profile_corpus(small_corpus, ALL_DEVICES[1], store=store)
        newest = store._profiles_path(device_profile_key(ALL_DEVICES[1]))
        past = time.time() - 3600
        os.utime(oldest, (past, past))

        bound = store.size_bytes() - 1
        removed = store.evict(bound)
        assert removed >= 1
        assert not oldest.exists()
        assert newest.exists()
        assert store.size_bytes() <= bound

    def test_max_bytes_enforced_on_put(self, small_corpus, tmp_path, fresh_memos):
        store = ProfileStore(tmp_path / "ps", max_bytes=1)
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        # Everything written was immediately evicted down to the bound.
        assert store.size_bytes() <= 1

    def test_manifest_counts(self, small_corpus, tmp_path, fresh_memos):
        store = ProfileStore(tmp_path / "ps")
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        profile_corpus(small_corpus, ALL_DEVICES[1], store=store)
        m = store.manifest()
        n = len(small_corpus.programs)
        assert m.version == PROFILER_VERSION
        assert m.profile_entries == 2 * n
        assert m.trace_entries == n
        assert m.total_bytes > 0
        assert dict(m.per_device) == {
            ALL_DEVICES[0].spec.name: n,
            ALL_DEVICES[1].spec.name: n,
        }
        rendered = m.render()
        assert PROFILER_VERSION in rendered
        assert ALL_DEVICES[0].spec.name in rendered

    def test_missing_root_reads_empty(self, tmp_path):
        store = ProfileStore(tmp_path / "never")
        assert len(store) == 0
        assert store.manifest().profile_entries == 0
        assert store.evict(10) == 0
        store.clear()  # no-op, no crash

    def test_clear_leaves_foreign_files(self, small_corpus, tmp_path, fresh_memos):
        root = tmp_path / "ps"
        store = ProfileStore(root)
        profile_corpus(small_corpus, ALL_DEVICES[0], store=store)
        foreign = root / "README.txt"
        foreign.write_text("not a segment")
        store.clear()
        assert foreign.exists()
        assert len(store) == 0


class TestActiveStore:
    def test_env_var_activates_store(self, small_corpus, tmp_path, monkeypatch, fresh_memos):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path / "env-store"))
        store = active_profile_store()
        assert store is not None
        profile_corpus(small_corpus, ALL_DEVICES[0])  # default: active store
        assert len(ProfileStore(tmp_path / "env-store")) == len(
            small_corpus.programs
        )

    def test_empty_env_means_no_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", "")
        assert active_profile_store() is None

    def test_set_active_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_CACHE", str(tmp_path / "ignored"))
        set_active_profile_store(None)
        try:
            assert active_profile_store() is None
        finally:
            from repro.gpusim.store import reset_active_profile_store

            reset_active_profile_store()


class TestStoreInvisibleToResults:
    def test_scenario_profiles_identical_with_and_without_store(
        self, small_corpus, tmp_path, fresh_memos
    ):
        device = ALL_DEVICES[3]
        bare = profile_corpus(small_corpus, device, store=None)
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()
        store = ProfileStore(tmp_path / "ps")
        cold = profile_corpus(small_corpus, device, store=store)
        _PROFILE_MEMO.clear()
        _TRACE_MEMO.clear()
        warm = profile_corpus(small_corpus, device, store=store)
        assert cold == bare
        assert warm == bare
