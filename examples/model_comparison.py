"""Compare emulated LLMs on the roofline classification task — a miniature
Table 1 over a dataset slice, contrasting a reasoning model, a strong
non-reasoning model, and a near-chance mini model.

Run:  python examples/model_comparison.py
"""

from repro.dataset import paper_dataset
from repro.eval.metrics import MetricReport
from repro.eval.rq1 import run_rq1
from repro.llm import get_model, query_cost_usd
from repro.prompts import build_classify_prompt
from repro.util.tables import format_table

MODELS = ("o3-mini-high", "gemini-2.0-flash-001", "gpt-4o-mini")
SLICE = 120  # samples; the full paper run uses all 340 (see benchmarks/)

ds = paper_dataset()
samples = list(ds.balanced)[:SLICE]
truths = [s.label for s in samples]

rows = []
for name in MODELS:
    model = get_model(name)

    # RQ1: explicit roofline numbers (short arithmetic prompts).
    rq1 = run_rq1(model, num_rooflines=60)

    # RQ2: zero-shot source-code classification.
    cost = 0.0
    preds = []
    for s in samples:
        resp = model.complete(build_classify_prompt(s).text)
        preds.append(resp.boundedness())
        cost += query_cost_usd(resp.usage, model.config)
    rq2 = MetricReport.from_predictions(truths, preds)

    rows.append([
        name,
        "yes" if model.config.reasoning else "no",
        rq1.best_accuracy,
        rq2.accuracy,
        rq2.macro_f1,
        rq2.mcc,
        cost,
    ])

print(format_table(
    ["Model", "Reasoning", "RQ1 Acc", "RQ2 Acc", "RQ2 F1", "RQ2 MCC", "Sweep $"],
    rows,
    title=f"Model comparison on {SLICE} samples",
))
print()
print("Reading the table the way the paper does (§3.5):")
print(" * every model aces RQ1 — the Roofline formula is known to all of them;")
print(" * only the reasoning model meaningfully beats chance on source code;")
print(" * the mini model's MCC ~ 0 marks it as a random predictor, despite")
print("   costing the least per query.")
