"""Extension bench — question-decomposition prompting (paper §4 future work).

*"Question-decomposition, successive-prompting, and least-to-most prompting
techniques have shown effectiveness in breaking down and solving complex
tasks. In an effort to improve roofline classification metrics, these
techniques warrant further investigation."*

Runs the three-step successive-prompting protocol (spec extraction → work
estimation → roofline verdict) against every Table 1 model and compares with
the RQ2 zero-shot baseline. Under this emulator's behavioural model,
decomposition pays in proportion to a model's underlying code-reading
ability: the reasoning tier gains 5-14 points (most for o1, whose zero-shot
bottleneck is context length — exactly what focused sub-prompts relieve),
while the near-chance minis stay near chance.
"""

from __future__ import annotations

from repro.eval.decompose import run_decompose_experiment
from repro.eval.rq23 import run_rq2
from repro.llm import all_models
from repro.util.tables import format_table


def _run(balanced):
    out = {}
    for model in all_models():
        rq2 = run_rq2(model, balanced).metrics
        dec = run_decompose_experiment(model, balanced)
        out[model.name] = (rq2, dec.metrics(), dec)
    return out


def test_extension_decompose(benchmark, balanced):
    results = benchmark.pedantic(_run, args=(balanced,), rounds=1, iterations=1)

    rows = []
    for name, (rq2, dec, full) in results.items():
        rows.append([
            name, rq2.accuracy, dec.accuracy, dec.accuracy - rq2.accuracy,
            dec.mcc, full.usage["requests"],
        ])
    print()
    print(format_table(
        ["Model", "RQ2 Acc", "Decomposed Acc", "Delta", "Dec MCC", "Requests"],
        rows,
        title="Extension — question-decomposition vs zero-shot (340 samples)",
    ))

    # Shape assertions for the extension's finding.
    for name, (rq2, dec, _) in results.items():
        assert dec.accuracy >= rq2.accuracy - 2.5, name  # never clearly hurts
    reasoning_gain = min(
        results[n][1].accuracy - results[n][0].accuracy
        for n in ("o3-mini-high", "o1", "o3-mini", "o1-mini-2024-09-12")
    )
    mini_gain = max(
        results[n][1].accuracy - results[n][0].accuracy
        for n in ("gpt-4o-mini", "gpt-4o-mini-2024-07-18")
    )
    assert reasoning_gain >= 3.0       # real gains for capable readers
    assert mini_gain <= reasoning_gain  # no free lunch for weak readers
    # Three completions per sample: decomposition triples the request count.
    any_run = next(iter(results.values()))[2]
    assert any_run.usage["requests"] == 3 * len(balanced)
