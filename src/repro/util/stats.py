"""Statistics helpers: chi-squared independence test, box-plot summaries.

The chi-squared machinery reproduces the paper's Section 3.2 hyperparameter
study (temperature/top_p have no statistically significant effect on model
predictions). Implemented from first principles on top of the regularized
incomplete gamma function so the core library only hard-depends on numpy;
results cross-validated against scipy in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


# ---------------------------------------------------------------------------
# chi-squared survival function via the regularized incomplete gamma function
# ---------------------------------------------------------------------------

def _gammainc_lower_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x) by power series (x < s+1)."""
    if x <= 0.0:
        return 0.0
    term = 1.0 / s
    total = term
    k = s
    for _ in range(1000):
        k += 1.0
        term *= x / k
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    log_prefix = s * math.log(x) - x - math.lgamma(s)
    return math.exp(log_prefix) * total


def _gammainc_upper_contfrac(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x) by continued fraction (x >= s+1)."""
    # Lentz's algorithm for the continued fraction representation.
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    log_prefix = s * math.log(x) - x - math.lgamma(s)
    return math.exp(log_prefix) * h


def chi2_sf(x: float, df: int) -> float:
    """Survival function (1 - CDF) of the chi-squared distribution.

    ``P(X >= x)`` for ``X ~ chi2(df)``. Accurate to ~1e-12 against scipy.
    """
    if df <= 0:
        raise ValueError("df must be positive")
    if x <= 0.0:
        return 1.0
    s = df / 2.0
    xx = x / 2.0
    if xx < s + 1.0:
        return 1.0 - _gammainc_lower_series(s, xx)
    return _gammainc_upper_contfrac(s, xx)


@dataclass(frozen=True)
class Chi2Result:
    """Outcome of a chi-squared independence test on a contingency table."""

    statistic: float
    dof: int
    p_value: float
    expected: np.ndarray

    @property
    def significant_at_05(self) -> bool:
        return self.p_value < 0.05


def chi_squared_independence(table: Sequence[Sequence[float]]) -> Chi2Result:
    """Pearson chi-squared test of independence for an R x C contingency table.

    Raises ``ValueError`` for degenerate tables (any zero row/column margin,
    or fewer than 2 rows/columns) because the test is undefined there.
    """
    obs = np.asarray(table, dtype=float)
    if obs.ndim != 2 or obs.shape[0] < 2 or obs.shape[1] < 2:
        raise ValueError("contingency table must be at least 2x2")
    if (obs < 0).any():
        raise ValueError("contingency table entries must be non-negative")
    row = obs.sum(axis=1, keepdims=True)
    col = obs.sum(axis=0, keepdims=True)
    total = obs.sum()
    if total <= 0 or (row == 0).any() or (col == 0).any():
        raise ValueError("contingency table has a zero margin")
    expected = row @ col / total
    stat = float(((obs - expected) ** 2 / expected).sum())
    dof = (obs.shape[0] - 1) * (obs.shape[1] - 1)
    return Chi2Result(statistic=stat, dof=dof, p_value=chi2_sf(stat, dof), expected=expected)


# ---------------------------------------------------------------------------
# box-plot / summary statistics (Figure 2 support)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus IQR whiskers, as drawn in Figure 2."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def five_number_summary(values: Sequence[float]) -> BoxStats:
    """Compute Tukey box-plot statistics (1.5 * IQR whiskers)."""
    arr = np.asarray(sorted(float(v) for v in values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q1, med, q3 = (float(np.percentile(arr, p)) for p in (25, 50, 75))
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    outliers = tuple(float(v) for v in arr[(arr < lo_fence) | (arr > hi_fence)])
    return BoxStats(
        minimum=float(arr.min()),
        q1=q1,
        median=med,
        q3=q3,
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        n=int(arr.size),
    )


def describe(values: Sequence[float]) -> dict[str, float]:
    """Mean/std/min/max/median summary used in reports."""
    arr = np.asarray([float(v) for v in values], dtype=float)
    if arr.size == 0:
        raise ValueError("cannot describe an empty sample")
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
    }
