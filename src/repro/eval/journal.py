"""Append-only, fsync'd sweep journal: the checkpoint/resume spine.

The deferred store flush makes completions *durable*; the journal makes
them *resumable*. Every work unit that completed AND whose cache entry
was flushed to disk gets one JSONL line ``{"unit": ..., "key": ...}``
appended to ``sweep-journal.jsonl`` in the cache directory; a resumed
sweep (``repro-paper sweep --resume``) skips any unit whose cache key is
journaled, serving it straight from the store. Correctness never depends
on the journal — entries are content-addressed, so a lost journal line
costs one recomputation, and a journaled-but-evicted entry silently
recomputes — which is why a torn final line (the crash window) is simply
ignored on load.

Write discipline: :meth:`SweepJournal.record` buffers in memory;
:meth:`SweepJournal.checkpoint` appends the buffered lines and fsyncs.
The engine checkpoints once per flushed chunk of units (see
``REPRO_JOURNAL_INTERVAL``), so the journal never claims a unit whose
store entry might still be in a pending buffer that a crash would
discard. Header lines (``{"journal": <version>, "sweep": <label>}``)
mark each sweep attachment; ``stats()`` surfaces them in the cache
manifest as resumable sweeps.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

JOURNAL_VERSION = "repro-journal-v1"
DEFAULT_JOURNAL_NAME = "sweep-journal.jsonl"

#: Units per journal checkpoint (and per store flush on journaled runs).
#: Smaller = less recomputation after a crash, more fsyncs; overridable
#: via ``$REPRO_JOURNAL_INTERVAL`` (chaos tests shrink it to kill sweeps
#: inside a tight checkpoint window).
DEFAULT_CHECKPOINT_INTERVAL = 64


def checkpoint_interval() -> int:
    raw = os.environ.get("REPRO_JOURNAL_INTERVAL", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return DEFAULT_CHECKPOINT_INTERVAL


@dataclass(frozen=True)
class JournalStats:
    """What ``repro-paper cache`` prints about a journal."""

    entries: int
    sweeps: int
    checkpoint_age_s: float | None

    def render(self) -> str:
        age = (
            "never checkpointed"
            if self.checkpoint_age_s is None
            else f"checkpoint age {self.checkpoint_age_s:.0f}s"
        )
        return (
            f"{self.entries} journaled unit(s), {age}, "
            f"{self.sweeps} resumable sweep(s)"
        )


class SweepJournal:
    """One append-only journal file; safe to share across threads.

    Loading tolerates a torn tail (a crash mid-append): parseable lines
    are kept, the first garbled line and everything after it are ignored
    — those units simply recompute, landing as warm store hits if their
    flush survived.
    """

    def __init__(self, path: str | Path, *, label: str | None = None):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._completed: dict[str, str] = {}  # cache key -> unit id
        self._pending: list[str] = []
        self._sweeps: set[str] = set()
        self._load()
        if label is not None:
            self._pending.append(
                json.dumps(
                    {"journal": JOURNAL_VERSION, "sweep": label},
                    sort_keys=True,
                )
            )
            self._sweeps.add(label)

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except ValueError:
                break  # torn tail: everything after is untrusted
            if not isinstance(row, dict):
                break
            if "journal" in row:
                if row.get("journal") != JOURNAL_VERSION:
                    # A foreign/newer journal: trust nothing recorded so
                    # far — resuming would need its semantics.
                    self._completed.clear()
                    self._sweeps.clear()
                    continue
                label = row.get("sweep")
                if isinstance(label, str):
                    self._sweeps.add(label)
                continue
            key = row.get("key")
            unit = row.get("unit")
            if isinstance(key, str) and isinstance(unit, str):
                self._completed[key] = unit

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._completed)

    def completed(self, key: str) -> bool:
        """Was a unit with this cache key journaled as completed?"""
        with self._lock:
            return key in self._completed

    def stats(self) -> JournalStats:
        age: float | None = None
        try:
            age = max(0.0, time.time() - self.path.stat().st_mtime)
        except OSError:
            pass
        with self._lock:
            return JournalStats(
                entries=len(self._completed),
                sweeps=len(self._sweeps),
                checkpoint_age_s=age,
            )

    @classmethod
    def stats_at(cls, path: str | Path) -> JournalStats | None:
        """Journal stats for ``path`` without registering a sweep; ``None``
        when no journal exists there."""
        if not Path(path).is_file():
            return None
        return cls(path).stats()

    # -- writes --------------------------------------------------------------
    def record(self, unit: str, key: str) -> None:
        """Buffer one completed unit; durable only after :meth:`checkpoint`.

        Callers must flush the unit's store entry *before* recording, so
        the journal never gets ahead of the store."""
        line = json.dumps({"unit": unit, "key": key}, sort_keys=True)
        with self._lock:
            if key in self._completed:
                return
            self._completed[key] = unit
            self._pending.append(line)

    def checkpoint(self) -> None:
        """Append all buffered lines and fsync — the crash-safe point."""
        with self._lock:
            if not self._pending:
                return
            lines = self._pending
            self._pending = []
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as f:
                f.write("\n".join(lines) + "\n")
                f.flush()
                os.fsync(f.fileno())
