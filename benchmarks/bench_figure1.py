"""E1 — Figure 1: RTX 3080 roofline with profiled corpus scatter.

Paper claims reproduced here:
* three rooflines (SP/DP/INT) with their balance points;
* profiled kernels plot under the ceilings (theoretical peak unmet);
* the majority of SP-FLOP and INT samples are bandwidth-bound.
"""

from __future__ import annotations

from repro.eval.figures import figure1_data
from repro.eval.report import Comparison, render_comparisons
from repro.types import OpClass


def _build(dataset):
    return figure1_data(list(dataset.profiled))


def test_figure1(benchmark, dataset):
    fig = benchmark.pedantic(_build, args=(dataset,), rounds=1, iterations=1)

    print()
    print(fig.render_ascii())
    print()
    comparisons = [
        Comparison("Figure 1", "SP samples BB fraction (paper: 'majority')",
                   None, fig.bb_fraction(OpClass.SP)),
        Comparison("Figure 1", "INT samples BB fraction (paper: 'majority')",
                   None, fig.bb_fraction(OpClass.INT)),
        Comparison("Figure 1", "DP samples BB fraction (mixed)",
                   None, fig.bb_fraction(OpClass.DP)),
        Comparison("Figure 1", "SP balance point (FLOP/byte)",
                   None, fig.balance[OpClass.SP][0]),
        Comparison("Figure 1", "DP balance point (FLOP/byte)",
                   None, fig.balance[OpClass.DP][0]),
        Comparison("Figure 1", "INT balance point (op/byte)",
                   None, fig.balance[OpClass.INT][0]),
    ]
    print(render_comparisons("E1 — Figure 1 roofline scatter", comparisons))

    assert fig.bb_fraction(OpClass.SP) > 0.5
    assert fig.bb_fraction(OpClass.INT) > 0.5
    rooflines = fig.gpu.rooflines()
    for oc in OpClass:
        for ai, perf in fig.points[oc]:
            assert perf <= rooflines[oc].attainable(ai) * 1.05
