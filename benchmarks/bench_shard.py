"""E-shard — distributed sweep: cold 1-shard vs 4-shard subprocess wall time.

This is the honest distributed-cost measurement: every shard is a separate
``repro-paper sweep --shard i/4`` *process* (its own interpreter, its own
dataset build, its own isolated cache directory), exactly as the CI matrix
and a multi-machine sweep would run it. The four shards run concurrently,
``merge-caches`` unions their caches, and the merged store must replay the
full 2-GPU smoke grid with zero new completions, byte-identical to the
1-shard run's cache.

Per-process startup (interpreter + corpus + dataset) is the fixed overhead
distribution has to amortise, so the speedup only shows once the grid's
completion work dominates — the table prints both wall times rather than
asserting a ratio.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.util.tables import format_table

GRID = [
    "--gpus", "v100,h100",
    "--model", "o3-mini-high",
    "--rq", "rq2",
    "--limit", "40",
]
NUM_SHARDS = 4


def _env(profile_cache: Path) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # Pin the kernel-profile store per strategy: it keeps the CLI's
    # default `.repro-profile-cache` out of the working tree, and giving
    # the 1-shard and 4-shard runs *separate* cold stores keeps the timed
    # comparison about sharding, not profile-store warmth (the four shard
    # processes still share one store, as real shard fleets would).
    env["REPRO_PROFILE_CACHE"] = str(profile_cache)
    return env


def _sweep_cmd(extra: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro.cli", "sweep", *GRID, *extra]


def _entry_files(root: Path) -> dict:
    return {p.name: p.read_bytes() for p in root.glob("responses-*.bin")}


def test_shard_subprocess_walltime(tmp_path):
    env_single = _env(tmp_path / "profile-store-single")
    env_sharded = _env(tmp_path / "profile-store-sharded")
    env = env_single

    # Cold 1-shard: one process sweeps the whole grid.
    t0 = time.perf_counter()
    subprocess.run(
        _sweep_cmd(["--cache-dir", str(tmp_path / "single")]),
        check=True, env=env_single, stdout=subprocess.DEVNULL,
    )
    t_single = time.perf_counter() - t0

    # Cold 4-shard: four concurrent processes, one planned shard each.
    t0 = time.perf_counter()
    workers = [
        subprocess.Popen(
            _sweep_cmd([
                "--shard", f"{i}/{NUM_SHARDS}",
                "--cache-dir", str(tmp_path / f"shard-{i}"),
            ]),
            env=env_sharded, stdout=subprocess.DEVNULL,
        )
        for i in range(NUM_SHARDS)
    ]
    assert all(w.wait() == 0 for w in workers)
    t_sharded = time.perf_counter() - t0

    # Merge and verify: union == single-run cache, replay is hit-only.
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "merge-caches",
         *(str(tmp_path / f"shard-{i}") for i in range(NUM_SHARDS)),
         "--into", str(tmp_path / "merged")],
        check=True, env=env, stdout=subprocess.DEVNULL,
    )
    assert _entry_files(tmp_path / "merged") == _entry_files(
        tmp_path / "single"
    )
    replay = subprocess.run(
        _sweep_cmd(["--cache-dir", str(tmp_path / "merged")]),
        check=True, env=env, capture_output=True, text=True,
    )
    assert ", 0 new completions" in replay.stdout

    rows = [
        ["1 shard (single process)", 1, f"{t_single:.2f}", "1.00x"],
        [f"{NUM_SHARDS} shards (concurrent processes)", NUM_SHARDS,
         f"{t_sharded:.2f}", f"{t_single / t_sharded:.2f}x"],
    ]
    print()
    print(format_table(
        ["plan", "procs", "wall s", "speedup"],
        rows,
        title=("Sharded sweep, subprocess-driven — 2 GPUs × 40 kernels "
               f"({os.cpu_count()} cores)"),
    ))
