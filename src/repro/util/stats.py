"""Statistics helpers: significance tests, effect sizes, bootstrap CIs,
box-plot summaries.

The chi-squared machinery reproduces the paper's Section 3.2 hyperparameter
study (temperature/top_p have no statistically significant effect on model
predictions); the Wilcoxon signed-rank test, Vargha-Delaney A12 effect
size, and BCa/percentile bootstrap back :mod:`repro.analysis.stats`'
significance suite over the hardware matrix. Everything is implemented from
first principles on top of numpy and ``math`` special functions so the core
library only hard-depends on numpy; results are cross-validated against
scipy in the test suite (which is the only place scipy is imported).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


# ---------------------------------------------------------------------------
# chi-squared survival function via the regularized incomplete gamma function
# ---------------------------------------------------------------------------

def _gammainc_lower_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x) by power series (x < s+1)."""
    if x <= 0.0:
        return 0.0
    term = 1.0 / s
    total = term
    k = s
    for _ in range(1000):
        k += 1.0
        term *= x / k
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    log_prefix = s * math.log(x) - x - math.lgamma(s)
    return math.exp(log_prefix) * total


def _gammainc_upper_contfrac(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x) by continued fraction (x >= s+1)."""
    # Lentz's algorithm for the continued fraction representation.
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    log_prefix = s * math.log(x) - x - math.lgamma(s)
    return math.exp(log_prefix) * h


def chi2_sf(x: float, df: int) -> float:
    """Survival function (1 - CDF) of the chi-squared distribution.

    ``P(X >= x)`` for ``X ~ chi2(df)``. Accurate to ~1e-12 against scipy.
    """
    if df <= 0:
        raise ValueError("df must be positive")
    if x <= 0.0:
        return 1.0
    s = df / 2.0
    xx = x / 2.0
    if xx < s + 1.0:
        return 1.0 - _gammainc_lower_series(s, xx)
    return _gammainc_upper_contfrac(s, xx)


@dataclass(frozen=True)
class Chi2Result:
    """Outcome of a chi-squared independence test on a contingency table."""

    statistic: float
    dof: int
    p_value: float
    expected: np.ndarray

    @property
    def significant_at_05(self) -> bool:
        return self.p_value < 0.05


def chi_squared_independence(table: Sequence[Sequence[float]]) -> Chi2Result:
    """Pearson chi-squared test of independence for an R x C contingency table.

    Raises ``ValueError`` for degenerate tables (any zero row/column margin,
    or fewer than 2 rows/columns) because the test is undefined there.
    """
    obs = np.asarray(table, dtype=float)
    if obs.ndim != 2 or obs.shape[0] < 2 or obs.shape[1] < 2:
        raise ValueError("contingency table must be at least 2x2")
    if (obs < 0).any():
        raise ValueError("contingency table entries must be non-negative")
    row = obs.sum(axis=1, keepdims=True)
    col = obs.sum(axis=0, keepdims=True)
    total = obs.sum()
    if total <= 0 or (row == 0).any() or (col == 0).any():
        raise ValueError("contingency table has a zero margin")
    expected = row @ col / total
    stat = float(((obs - expected) ** 2 / expected).sum())
    dof = (obs.shape[0] - 1) * (obs.shape[1] - 1)
    return Chi2Result(statistic=stat, dof=dof, p_value=chi2_sf(stat, dof), expected=expected)


# ---------------------------------------------------------------------------
# box-plot / summary statistics (Figure 2 support)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus IQR whiskers, as drawn in Figure 2."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def five_number_summary(values: Sequence[float]) -> BoxStats:
    """Compute Tukey box-plot statistics (1.5 * IQR whiskers)."""
    arr = np.asarray(sorted(float(v) for v in values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q1, med, q3 = (float(np.percentile(arr, p)) for p in (25, 50, 75))
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    outliers = tuple(float(v) for v in arr[(arr < lo_fence) | (arr > hi_fence)])
    return BoxStats(
        minimum=float(arr.min()),
        q1=q1,
        median=med,
        q3=q3,
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        n=int(arr.size),
    )


def describe(values: Sequence[float]) -> dict[str, float]:
    """Mean/std/min/max/median summary used in reports."""
    arr = np.asarray([float(v) for v in values], dtype=float)
    if arr.size == 0:
        raise ValueError("cannot describe an empty sample")
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
    }


# ---------------------------------------------------------------------------
# standard-normal distribution functions
# ---------------------------------------------------------------------------

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def norm_cdf(x: float) -> float:
    """Standard-normal CDF via the complementary error function."""
    return 0.5 * math.erfc(-x / _SQRT2)


def norm_sf(x: float) -> float:
    """Standard-normal survival function ``P(Z >= x)``."""
    return 0.5 * math.erfc(x / _SQRT2)


# Acklam's rational approximation to the normal quantile: three regimes
# (lower tail / central / upper tail) accurate to ~1.15e-9, polished to
# full double precision with one Halley step against the erfc-exact CDF.
_ACKLAM_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_ACKLAM_SPLIT = 0.02425


def norm_ppf(p: float) -> float:
    """Standard-normal quantile function (inverse CDF).

    ``p`` outside ``(0, 1)`` maps to ``±inf`` at the boundaries (the BCa
    adjustment can push percentiles there) and raises beyond them.
    """
    if p < 0.0 or p > 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {p}")
    if p == 0.0:
        return -math.inf
    if p == 1.0:
        return math.inf
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if p < _ACKLAM_SPLIT:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    elif p <= 1.0 - _ACKLAM_SPLIT:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    # One Halley refinement step against the erfc-exact distribution
    # functions. Above the median the CDF saturates toward 1 and
    # ``cdf(x) - p`` cancels catastrophically, so refine the residual in
    # survival-function space there (``1 - p`` is exact for p >= 0.5).
    if p > 0.5:
        e = (1.0 - p) - norm_sf(x)
    else:
        e = norm_cdf(x) - p
    u = e * _SQRT_2PI * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


# ---------------------------------------------------------------------------
# rank utilities
# ---------------------------------------------------------------------------

def rankdata_average(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """1-based ranks with ties sharing their group's average rank."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("rankdata_average expects a 1-d sample")
    order = np.argsort(arr, kind="stable")
    sorted_arr = arr[order]
    # Group boundaries: True where a new distinct value starts.
    boundaries = np.empty(arr.size, dtype=bool)
    if arr.size:
        boundaries[0] = True
        boundaries[1:] = sorted_arr[1:] != sorted_arr[:-1]
    starts = np.flatnonzero(boundaries)
    ends = np.append(starts[1:], arr.size)
    # Average of 1-based ranks [start+1, end] is (start + end + 1) / 2.
    group_rank = (starts + ends + 1) / 2.0
    group_of = np.cumsum(boundaries) - 1
    ranks = np.empty(arr.size, dtype=float)
    ranks[order] = group_rank[group_of]
    return ranks


# ---------------------------------------------------------------------------
# paired Wilcoxon signed-rank test
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of a two-sided paired Wilcoxon signed-rank test.

    ``statistic`` is ``min(w_plus, w_minus)`` (the classic T). ``n`` counts
    the non-zero differences actually ranked; ``zeros`` the discarded
    zero differences. ``method`` records which null was used (``exact`` or
    ``approx``); ``z`` is the normal-approximation score (``0.0`` under the
    exact null).
    """

    statistic: float
    w_plus: float
    w_minus: float
    n: int
    zeros: int
    p_value: float
    method: str
    z: float

    @property
    def significant_at_05(self) -> bool:
        return self.p_value < 0.05


def _signed_rank_counts(n: int) -> np.ndarray:
    """``c[k]`` = number of subsets of ``{1..n}`` summing to ``k`` — the
    (unnormalised) exact null distribution of W+ over ``2**n`` sign flips."""
    total = n * (n + 1) // 2
    counts = np.zeros(total + 1, dtype=float)
    counts[0] = 1.0
    for i in range(1, n + 1):
        counts[i:] = counts[i:] + counts[: total + 1 - i]
    return counts


def wilcoxon_signed_rank(
    x: Sequence[float] | np.ndarray,
    y: Sequence[float] | np.ndarray | None = None,
    *,
    method: str = "auto",
) -> WilcoxonResult:
    """Two-sided paired Wilcoxon signed-rank test (scipy conventions).

    ``x`` is either the paired differences (``y=None``) or the first
    sample, paired element-wise with ``y``. Zero differences are discarded
    (scipy's ``zero_method="wilcox"``); if *every* difference is zero the
    samples are identical and the degenerate result ``p=1`` is returned
    rather than raising. ``method="auto"`` uses the exact null when
    ``n <= 50`` with no ties or zeros, the tie-corrected normal
    approximation otherwise; ``"exact"``/``"approx"`` force one (exact
    with ties raises — the exact null assumes distinct ranks).
    """
    if method not in ("auto", "exact", "approx"):
        raise ValueError(f"unknown method {method!r}")
    d = np.asarray(x, dtype=float)
    if y is not None:
        yy = np.asarray(y, dtype=float)
        if d.shape != yy.shape:
            raise ValueError("paired samples must have equal length")
        d = d - yy
    if d.ndim != 1 or d.size == 0:
        raise ValueError("need a non-empty 1-d sample of differences")

    zeros = int((d == 0).sum())
    d = d[d != 0]
    n = int(d.size)
    if n == 0:
        # All pairs identical: no evidence of any shift.
        return WilcoxonResult(
            statistic=0.0, w_plus=0.0, w_minus=0.0, n=0, zeros=zeros,
            p_value=1.0, method="degenerate", z=0.0,
        )

    abs_ranks = rankdata_average(np.abs(d))
    w_plus = float(abs_ranks[d > 0].sum())
    w_minus = float(abs_ranks[d < 0].sum())
    statistic = min(w_plus, w_minus)

    _, tie_counts = np.unique(np.abs(d), return_counts=True)
    has_ties = bool((tie_counts > 1).any())
    if method == "exact" and has_ties:
        raise ValueError(
            "exact Wilcoxon null is undefined with tied |differences|; "
            "use method='approx'"
        )
    use_exact = method == "exact" or (
        method == "auto" and n <= 50 and not has_ties and zeros == 0
    )

    if use_exact:
        counts = _signed_rank_counts(n)
        cdf = counts[: int(statistic) + 1].sum() / counts.sum()
        p = min(1.0, 2.0 * cdf)
        return WilcoxonResult(
            statistic=statistic, w_plus=w_plus, w_minus=w_minus, n=n,
            zeros=zeros, p_value=p, method="exact", z=0.0,
        )

    mean = n * (n + 1) / 4.0
    var = n * (n + 1) * (2 * n + 1) / 24.0
    var -= float((tie_counts**3 - tie_counts).sum()) / 48.0
    if var <= 0:
        # Every |difference| tied in one group of even size can zero the
        # variance; there is no information left to test.
        return WilcoxonResult(
            statistic=statistic, w_plus=w_plus, w_minus=w_minus, n=n,
            zeros=zeros, p_value=1.0, method="degenerate", z=0.0,
        )
    z = (w_plus - mean) / math.sqrt(var)
    p = min(1.0, 2.0 * norm_sf(abs(z)))
    return WilcoxonResult(
        statistic=statistic, w_plus=w_plus, w_minus=w_minus, n=n,
        zeros=zeros, p_value=p, method="approx", z=z,
    )


# ---------------------------------------------------------------------------
# Vargha-Delaney A12 effect size
# ---------------------------------------------------------------------------

def vargha_delaney_a12(
    x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray
) -> float:
    """Vargha-Delaney A12: ``P(X > Y) + 0.5 P(X = Y)`` by average ranks.

    0.5 means stochastic equality; 1.0 means every ``x`` exceeds every
    ``y``. Equals the normalised Mann-Whitney U statistic ``U1 / (n m)``.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    n, m = xa.size, ya.size
    if n == 0 or m == 0:
        raise ValueError("A12 needs two non-empty samples")
    ranks = rankdata_average(np.concatenate([xa, ya]))
    r1 = float(ranks[:n].sum())
    return (r1 / n - (n + 1) / 2.0) / m


def a12_magnitude(a12: float) -> str:
    """Vargha & Delaney's qualitative magnitude of an A12 effect size."""
    dev = abs(a12 - 0.5)
    if dev < 0.06:
        return "negligible"
    if dev < 0.14:
        return "small"
    if dev < 0.21:
        return "medium"
    return "large"


# ---------------------------------------------------------------------------
# seeded bootstrap confidence intervals (percentile and BCa)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float
    method: str
    n_resamples: int

    @property
    def width(self) -> float:
        return self.high - self.low


def _jackknife_acceleration(theta_jack: np.ndarray) -> float:
    """BCa acceleration constant from leave-one-out estimates."""
    u = theta_jack.mean() - theta_jack
    denom = float((u**2).sum()) ** 1.5
    if denom == 0.0:
        return 0.0
    return float((u**3).sum()) / (6.0 * denom)


def bootstrap_ci(
    data: Sequence | np.ndarray,
    statistic: Callable[[np.ndarray], float | np.ndarray],
    *,
    rng,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    method: str = "bca",
    vectorized: bool = False,
) -> BootstrapCI:
    """Bootstrap CI for ``statistic(data)``, resampling rows of ``data``.

    ``rng`` is a :class:`repro.util.rng.RngStream` (or anything exposing
    its ``integer_matrix``), which is the *only* randomness source — the
    same stream key and data always yield the same interval.
    ``method="bca"`` applies the bias-corrected-and-accelerated adjustment
    (median bias from the resample distribution, acceleration from a
    jackknife); ``"percentile"`` takes the raw resample quantiles. With
    ``vectorized=True`` the statistic receives a stacked array of
    resamples (shape ``(B,) + data.shape``) and must return ``B`` values —
    the fast path for the matrix-sized inputs in
    :mod:`repro.analysis.stats`.
    """
    if method not in ("bca", "percentile"):
        raise ValueError(f"unknown bootstrap method {method!r}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    arr = np.asarray(data)
    n = arr.shape[0] if arr.ndim else 0
    if n == 0:
        raise ValueError("cannot bootstrap an empty sample")

    def evaluate(index_rows: np.ndarray) -> np.ndarray:
        if vectorized:
            return np.asarray(statistic(arr[index_rows]), dtype=float)
        return np.asarray(
            [statistic(arr[rows]) for rows in index_rows], dtype=float
        )

    theta_hat = float(evaluate(np.arange(n)[None, :])[0])
    idx = rng.integer_matrix((n_resamples, n), 0, n)
    theta_b = evaluate(idx)
    if theta_b.shape != (n_resamples,):
        raise ValueError(
            f"statistic returned shape {theta_b.shape}, "
            f"expected ({n_resamples},)"
        )

    alpha = (1.0 - confidence) / 2.0
    if method == "percentile":
        lo_q, hi_q = alpha, 1.0 - alpha
    else:
        # Bias correction: where the point estimate sits in the resample
        # distribution (mean of the strict and weak percentile, matching
        # scipy's percentileofscore(kind="mean")).
        frac = (
            float((theta_b < theta_hat).sum())
            + float((theta_b <= theta_hat).sum())
        ) / (2.0 * n_resamples)
        if frac <= 0.0 or frac >= 1.0:
            # The estimate lies outside the whole resample cloud; the
            # adjusted percentiles saturate at the matching extreme.
            lo_q = hi_q = 0.0 if frac <= 0.0 else 1.0
        else:
            z0 = norm_ppf(frac)
            jack_rows = np.arange(n)[None, :].repeat(n, axis=0)
            jack_rows = jack_rows[~np.eye(n, dtype=bool)].reshape(n, n - 1)
            accel = (
                _jackknife_acceleration(evaluate(jack_rows)) if n > 1 else 0.0
            )

            def adjust(q: float) -> float:
                zq = z0 + norm_ppf(q)
                denom = 1.0 - accel * zq
                if denom <= 0.0:
                    return 1.0 if zq > 0 else 0.0
                return norm_cdf(z0 + zq / denom)

            lo_q, hi_q = adjust(alpha), adjust(1.0 - alpha)

    low = float(np.quantile(theta_b, lo_q))
    high = float(np.quantile(theta_b, hi_q))
    return BootstrapCI(
        estimate=theta_hat,
        low=min(low, high),
        high=max(low, high),
        confidence=confidence,
        method=method,
        n_resamples=n_resamples,
    )


# ---------------------------------------------------------------------------
# multiple-comparison correction
# ---------------------------------------------------------------------------

def holm_bonferroni(p_values: Sequence[float]) -> tuple[float, ...]:
    """Holm's step-down adjusted p-values (uniformly more powerful than
    Bonferroni, controls the family-wise error rate at the same level).

    Sorted ascending, the k-th smallest p is scaled by ``(m - k)`` and a
    running maximum enforces monotonicity; results are capped at 1 and
    returned in the input order.
    """
    m = len(p_values)
    if m == 0:
        return ()
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-value {p} outside [0, 1]")
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, i in enumerate(order):
        running = max(running, (m - rank) * p_values[i])
        adjusted[i] = min(1.0, running)
    return tuple(adjusted)
