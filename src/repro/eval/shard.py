"""Sharded sweeps: split the (model × RQ × GPU × kernel) grid across machines.

A cold hardware-matrix sweep is the repo's dominant wall-clock cost: every
(model, RQ, GPU, kernel) cell item is one completion. This module scales it
past one machine by making the content-addressed response cache the only
coordination point — SHA-256 keys merge cleanly by construction, so workers
never need to talk to each other:

* :func:`plan_shards` partitions the work grid into ``N`` balanced shards.
  The plan is *deterministic*: units are canonically sorted, then dealt
  round-robin, so the same grid always yields the same plan regardless of
  input order or of how many worker threads each machine will use. Every
  worker can therefore compute the full plan locally and execute just its
  own slice (``repro-paper sweep --shard I/N``).
* :func:`run_shard` executes one shard, writing completions into that
  worker's isolated cache. Prompts are built by the same
  :func:`repro.eval.rq23.classification_items` path as the single-machine
  sweep, so shard cache keys are exactly the keys a single run would write.
* :func:`merge_caches` unions shard caches into one store
  (``repro-paper merge-caches``), copying entry blobs byte-verbatim into
  the destination's segments, refusing conflicting values under one key,
  recording shard provenance in a sidecar manifest, and honoring a size
  bound. For a partitioned grid the merged store equals the single-machine
  store entry-for-entry (and, segments being canonically encoded,
  file-for-file), so a sweep replayed over it issues **zero** new
  completions and reproduces the matrix report byte-identically.

Interrupted or lost shards are cheap: re-running a shard replays its
finished work from its cache and computes only what's missing.

Shard execution profiles its kernels through the same batched two-phase
path as single-machine sweeps (:func:`repro.eval.matrix.scenario_samples`
→ :func:`repro.gpusim.profile_programs`), so shard subprocesses sharing a
persistent profile store (``--profile-cache`` / ``$REPRO_PROFILE_CACHE``)
skip the symbolic IR walk entirely once any one of them has warmed it.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.eval.engine import CachedResponse, DiskResponseStore, EvalEngine
from repro.eval.matrix import grid_uids, regime_variant, scenario_samples
from repro.eval.rq23 import classification_items
from repro.llm.base import LlmModel
from repro.roofline.hardware import GpuSpec, short_gpu_name
from repro.util.parallel import round_robin_partition
from repro.util.tables import format_table


def parse_shard_spec(spec: str) -> tuple[int, int]:
    """Parse an ``I/N`` shard spec into ``(index, count)``.

    ``index`` must lie in ``[0, count)`` and ``count`` must be positive —
    the CLI convention (``--shard 1/3`` = the second of three shards).
    """
    text = str(spec).strip()
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard spec {spec!r} is not of the form I/N (e.g. 0/3)"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index {index} out of range for {count} shards"
        )
    return index, count


@dataclass(frozen=True, order=True)
class WorkUnit:
    """One completion of the sweep grid: a kernel in a (model, GPU, RQ) cell.

    Ordered lexicographically — the canonical order :func:`plan_shards`
    sorts into before dealing units out.
    """

    model_name: str
    gpu_name: str
    rq: str  # regime label: "rq2" | "rq3" | a prompt-variant name
    uid: str


def grid_units(
    model_names: Sequence[str],
    gpu_names: Sequence[str],
    rqs: Sequence[str],
    uids: Sequence[str],
) -> tuple[WorkUnit, ...]:
    """Every work unit of one sweep grid (the full cartesian product)."""
    return tuple(
        WorkUnit(model_name=m, gpu_name=g, rq=rq, uid=uid)
        for g in gpu_names
        for m in model_names
        for rq in rqs
        for uid in uids
    )


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of a work grid into ``num_shards`` slices."""

    num_shards: int
    shards: tuple[tuple[WorkUnit, ...], ...]

    @property
    def total_units(self) -> int:
        return sum(len(s) for s in self.shards)

    def shard(self, index: int) -> tuple[WorkUnit, ...]:
        if not 0 <= index < self.num_shards:
            raise IndexError(
                f"shard index {index} out of range for {self.num_shards} shards"
            )
        return self.shards[index]


def plan_shards(units: Iterable[WorkUnit], num_shards: int) -> ShardPlan:
    """Partition ``units`` into ``num_shards`` balanced, stable shards.

    Canonical sort, then round-robin deal — which guarantees, and the
    property suite pins: shards are pairwise disjoint, cover every unit,
    differ in size by at most one, and the plan depends only on the unit
    *set* and ``num_shards`` (input order and executor worker counts are
    irrelevant). The interleaving also spreads each (model, GPU, RQ) cell
    across shards, so uneven per-cell costs balance out.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    ordered = sorted(units)
    for a, b in zip(ordered, ordered[1:]):
        if a == b:
            raise ValueError(f"duplicate work unit in grid: {a}")
    return ShardPlan(
        num_shards=num_shards,
        shards=tuple(
            tuple(bucket)
            for bucket in round_robin_partition(ordered, num_shards)
        ),
    )


@dataclass(frozen=True)
class ShardCellSlice:
    """One (model, GPU, RQ) cell's share of a shard."""

    model_name: str
    gpu_name: str
    rq: str
    items: int


@dataclass(frozen=True)
class ShardRunReport:
    """What one :func:`run_shard` call executed."""

    shard_index: int
    num_shards: int
    total_units: int  # whole-grid size, for "my share of" context
    cells: tuple[ShardCellSlice, ...]

    @property
    def units(self) -> int:
        return sum(c.items for c in self.cells)

    def render(self) -> str:
        rows = [
            [c.model_name, short_gpu_name(c.gpu_name), c.rq, c.items]
            for c in self.cells
        ]
        return format_table(
            ["Model", "GPU", "RQ", "Items"],
            rows,
            title=(
                f"Shard {self.shard_index}/{self.num_shards} — "
                f"{self.units} of {self.total_units} grid units"
            ),
        )


def run_shard(
    models: Sequence[LlmModel],
    gpus: Sequence[GpuSpec],
    *,
    shard_index: int,
    num_shards: int,
    rqs: Sequence[str] = ("rq2",),
    limit: int = 0,
    engine: EvalEngine | None = None,
) -> ShardRunReport:
    """Execute one planned shard of the (model × RQ × GPU × kernel) grid.

    The shard's product is its cache contents (record outputs are
    discarded — the merged cache replays the full sweep later), so the
    engine should carry a disk store. Only the shard's own kernels are
    profiled per device, and a re-run replays finished units from the
    cache, computing just what's missing.
    """
    variants = {rq: regime_variant(rq) for rq in rqs}
    if len({v.name for v in variants.values()}) != len(rqs):
        raise ValueError(f"duplicate matrix regimes in {tuple(rqs)}")
    if not gpus:
        raise ValueError("no GPUs selected")
    if not models:
        raise ValueError("no models selected")
    engine = engine or EvalEngine()

    uids = grid_uids(limit, jobs=engine.jobs)
    plan = plan_shards(
        grid_units(
            [m.name for m in models],
            [g.name for g in gpus],
            tuple(rqs),
            uids,
        ),
        num_shards,
    )
    mine = plan.shard(shard_index)

    model_by_name = {m.name: m for m in models}
    gpu_by_name = {g.name: g for g in gpus}
    grouped: dict[tuple[str, str, str], list[str]] = {}
    for unit in mine:
        cell = (unit.model_name, unit.gpu_name, unit.rq)
        grouped.setdefault(cell, []).append(unit.uid)

    # Samples depend only on (gpu, kernel), so profile each device once for
    # the shard's per-device uid union and slice per cell — not once per
    # (model, RQ) cell, which would redo identical profiling work (and
    # memoize every distinct subset) model-count × RQ-count times.
    uids_by_gpu: dict[str, list[str]] = {}
    for (_, gpu_name, _), cell_uids in grouped.items():
        union = uids_by_gpu.setdefault(gpu_name, [])
        union.extend(u for u in cell_uids if u not in union)
    from repro.gpusim.store import active_profile_store
    from repro.store.text import active_artifact_cache

    cells = []
    with ExitStack() as stack:
        # Batch the whole shard's profile/artifact-store writes: one
        # read-merge-write per segment at block exit (or per flush
        # interval) instead of one per device pass. The response store
        # batches per engine.run call already.
        for batched in (active_profile_store(), active_artifact_cache()):
            if batched is not None:
                stack.enter_context(batched.deferred())
        samples_by_gpu = {
            gpu_name: {
                s.uid: s
                for s in scenario_samples(
                    gpu_by_name[gpu_name], uids=tuple(sorted(union)),
                    jobs=engine.jobs,
                )
            }
            for gpu_name, union in uids_by_gpu.items()
        }

        for (model_name, gpu_name, rq), cell_uids in grouped.items():
            gpu = gpu_by_name[gpu_name]
            samples = [samples_by_gpu[gpu_name][uid] for uid in cell_uids]
            items = classification_items(
                samples, variant=variants[rq], gpu=gpu
            )
            engine.run(model_by_name[model_name], items)
            cells.append(
                ShardCellSlice(
                    model_name=model_name,
                    gpu_name=gpu_name,
                    rq=rq,
                    items=len(items),
                )
            )
    return ShardRunReport(
        shard_index=shard_index,
        num_shards=num_shards,
        total_units=plan.total_units,
        cells=tuple(cells),
    )


class CacheMergeConflict(RuntimeError):
    """Two caches disagree about the value under one content-addressed key.

    Impossible for shards of one grid (keys hash the full model profile and
    prompt, and the emulated models are deterministic) — so a conflict
    means the caches were built from different calibrations or prompt
    versions, and merging them would silently corrupt results.
    """

    def __init__(self, key: str, source: str, dest: str):
        super().__init__(
            f"merge conflict on key {key}: the entry in {source} does not "
            f"match the entry already in {dest}; these caches were built "
            "from different model calibrations or prompt versions"
        )
        self.key = key
        self.source = source


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_caches` call did."""

    dest: str
    merged: int  # entries newly installed in dest
    duplicates: int  # keys already present with identical bytes
    evicted: int  # entries removed to honor the size bound
    per_source: tuple[tuple[str, int], ...]  # (label, entries contributed)
    empty_sources: tuple[str, ...]  # missing or entry-less source dirs

    def render(self) -> str:
        lines = [
            f"merged into {self.dest}: {self.merged} new entries, "
            f"{self.duplicates} duplicates"
        ]
        for label, count in self.per_source:
            lines.append(f"  {label}: +{count}")
        if self.empty_sources:
            lines.append(
                "empty or missing sources: " + ", ".join(self.empty_sources)
            )
        if self.evicted:
            lines.append(
                f"evicted {self.evicted} entries to honor the size bound"
            )
        return "\n".join(lines)


def merge_caches(
    sources: Sequence[str | Path],
    dest: str | Path,
    *,
    max_bytes: int | None = None,
) -> MergeReport:
    """Union shard caches into one store.

    Entry *blobs* are copied byte-verbatim into the destination's binary
    segments (legacy per-entry source files included — their canonical
    JSON bytes are what a segment would hold), so for a partitioned grid
    the merged store equals the single-machine store entry-for-entry,
    segment-file-for-segment-file. A key present in the destination or an
    earlier source must carry identical bytes — anything else raises
    :class:`CacheMergeConflict` rather than silently corrupting results.
    Missing or empty sources are tolerated (an interrupted shard simply
    contributes nothing; the report names it). Each installed entry's
    source is recorded in the destination's provenance sidecar, surfaced by
    ``repro-paper cache``; with ``max_bytes``, oldest-written segments are
    evicted after the union.
    """
    # Unbounded during the union: the size bound applies once at the end,
    # so mid-merge flushes never evict entries a later source still needs
    # for byte-conflict checks.
    dest_store = DiskResponseStore(dest)
    merged = duplicates = 0
    per_source: list[tuple[str, int]] = []
    empty: list[str] = []
    provenance: dict[str, str] = {}
    # A conflict aborts the merge but must not lose the entries installed
    # so far: deferred() discards its buffer on an exceptional exit, so
    # the conflict is caught *inside* the block and re-raised after the
    # clean exit has flushed. A retry without the bad source then sees the
    # kept entries as duplicates, with their provenance intact.
    conflict: CacheMergeConflict | None = None
    try:
        with dest_store.deferred():
            for source in sources:
                label = str(source)
                contributed = 0
                entries = list(DiskResponseStore(source).iter_entries())
                if not entries:
                    empty.append(label)
                    per_source.append((label, 0))
                    continue
                for key, blob in entries:
                    existing = dest_store.get_blob(key)
                    if existing is not None:
                        if existing != blob:
                            conflict = CacheMergeConflict(
                                key, label, str(dest)
                            )
                            break
                        duplicates += 1
                        continue
                    try:
                        value = CachedResponse.from_dict(json.loads(blob))
                    except (KeyError, TypeError, ValueError):
                        continue  # unreadable source entry: an empty slot
                    dest_store.put(key, value)
                    provenance[key] = label
                    contributed += 1
                    merged += 1
                if conflict is not None:
                    break
                per_source.append((label, contributed))
    finally:
        dest_store.record_provenance(provenance)
    if conflict is not None:
        raise conflict
    evicted = dest_store.evict(max_bytes) if max_bytes is not None else 0
    return MergeReport(
        dest=str(dest),
        merged=merged,
        duplicates=duplicates,
        evicted=evicted,
        per_source=tuple(per_source),
        empty_sources=tuple(empty),
    )
