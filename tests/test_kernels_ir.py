"""Tests for repro.kernels.ir — IR construction, walkers, scalar eval."""

import pytest

from repro.kernels.ir import (
    AffineIndex,
    ArrayDecl,
    Assign,
    BinOp,
    BinOpKind,
    Const,
    DType,
    For,
    If,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Scope,
    Store,
    Var,
    add,
    aff,
    eval_scalar,
    kernel_loads,
    kernel_symbols,
    load,
    mul,
    var,
    walk_stmts,
)


class TestEvalScalar:
    def test_int_literal(self):
        assert eval_scalar(42, {}) == 42

    def test_param_lookup(self):
        assert eval_scalar("n", {"n": 7}) == 7

    def test_product_expression(self):
        assert eval_scalar("n*n", {"n": 4}) == 16
        assert eval_scalar("3*n", {"n": 5}) == 15
        assert eval_scalar("n*m", {"n": 2, "m": 3}) == 6

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            eval_scalar("missing", {"n": 1})

    def test_unbound_in_product_raises(self):
        with pytest.raises(KeyError):
            eval_scalar("n*q", {"n": 1})

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            eval_scalar(True, {})

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            eval_scalar("n**m", {"n": 1, "m": 2})


class TestDType:
    def test_sizes(self):
        assert DType.F32.size == 4
        assert DType.F64.size == 8
        assert DType.I32.size == 4
        assert DType.I64.size == 8

    def test_float_flags(self):
        assert DType.F32.is_float and DType.F64.is_float
        assert not DType.I32.is_float

    def test_c_names(self):
        assert DType.F64.c_name == "double"
        assert DType.I64.c_name == "long long"


class TestAffineIndex:
    def test_coeff_lookup(self):
        idx = aff(("gy", "n"), "gx", const=1)
        assert idx.coeff("gx", {}) == 1
        assert idx.coeff("gy", {"n": 64}) == 64
        assert idx.coeff("absent", {}) == 0

    def test_coeff_sums_duplicates(self):
        idx = AffineIndex(terms=(("gx", 2), ("gx", 3)))
        assert idx.coeff("gx", {}) == 5

    def test_shift(self):
        idx = aff("gx", const=1).shift(2)
        assert idx.const == 3

    def test_symbols(self):
        assert aff(("gy", "n"), "gx").symbols() == ("gy", "gx")


class TestKernelConstruction:
    def _simple(self, **kwargs):
        defaults = dict(
            name="k",
            arrays=(ArrayDecl("x", DType.F32, "n"),),
            params=(ScalarParam("n", DType.I32),),
            body=(Let("v", load("x", aff("gx")), DType.F32),),
            work_items="n",
        )
        defaults.update(kwargs)
        return Kernel(**defaults)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            self._simple(
                arrays=(ArrayDecl("n", DType.F32, "n"),),  # collides with param
            )

    def test_array_lookup(self):
        k = self._simple()
        assert k.array("x").dtype is DType.F32
        with pytest.raises(KeyError):
            k.array("nope")

    def test_scope_partition(self):
        k = self._simple(
            arrays=(
                ArrayDecl("x", DType.F32, "n"),
                ArrayDecl("tile", DType.F32, 64, Scope.SHARED),
            )
        )
        assert [a.name for a in k.global_arrays()] == ["x"]
        assert [a.name for a in k.shared_arrays()] == ["tile"]

    def test_total_work_1d(self):
        k = self._simple()
        assert k.total_work({"n": 100}) == 100

    def test_total_work_2d(self):
        k = self._simple(work_items="n", work_items_y="m")
        assert k.total_work({"n": 10, "m": 5}) == 50

    def test_byte_size(self):
        a = ArrayDecl("x", DType.F64, "n*n")
        assert a.byte_size({"n": 4}) == 16 * 8


class TestStatementValidation:
    def test_loop_zero_extent_rejected(self):
        with pytest.raises(ValueError):
            For("i", 0, ())

    def test_loop_zero_step_rejected(self):
        with pytest.raises(ValueError):
            For("i", 4, (), step=0)

    def test_if_taken_fraction_bounds(self):
        with pytest.raises(ValueError):
            If(cond=Const(1, DType.I32), then=(), taken_fraction=1.5)


class TestWalkers:
    def _kernel(self):
        body = (
            Let("acc", Const(0.0, DType.F32), DType.F32),
            For(
                "k", "n",
                (
                    Assign(
                        "acc",
                        add(var("acc"), load("x", aff("k")), DType.F32),
                        DType.F32,
                    ),
                ),
            ),
            If(
                cond=BinOp(BinOpKind.GT, var("acc"), Const(0.0, DType.F32), DType.I32),
                then=(Store("y", aff("gx"), var("acc"), DType.F32),),
                taken_fraction=0.5,
            ),
        )
        return Kernel(
            name="walky",
            arrays=(ArrayDecl("x", DType.F32, "n"), ArrayDecl("y", DType.F32, "n", is_output=True)),
            params=(ScalarParam("n", DType.I32),),
            body=body,
            work_items="n",
        )

    def test_walk_stmts_descends(self):
        stmts = list(walk_stmts(self._kernel().body))
        kinds = [type(s).__name__ for s in stmts]
        assert "For" in kinds and "Assign" in kinds and "Store" in kinds

    def test_kernel_loads(self):
        loads = kernel_loads(self._kernel())
        assert len(loads) == 1
        assert loads[0].array == "x"

    def test_kernel_symbols(self):
        syms = kernel_symbols(self._kernel())
        assert {"acc", "k", "gx"} <= syms
