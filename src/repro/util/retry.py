"""Bounded retry with jittered exponential backoff — sync and async.

This is the shared half of what :mod:`repro.serve.retry` grew for the
async serving path: the :class:`RetryPolicy` schedule, the
:class:`TransientError` marker taxonomy, and the retry drivers. The sync
batch engine (:mod:`repro.eval.engine`) and the async serving engine now
back off under the *same* policy object — serve re-exports everything
here unchanged, so ``from repro.serve import RetryPolicy`` keeps working.

What counts as retryable is the caller's business: both drivers take a
``retryable`` exception tuple (defaulting to :class:`TransientError`, the
marker base that provider errors and injected faults subclass). Anything
else is a bug or a permanent rejection and propagates on the first
attempt. A retryable error may carry a ``retry_after`` attribute (a
429-shaped server hint, seconds); the backoff never waits less than it.

Determinism note: backoff delays and attempt timeouts are *jittered*
(decorrelating clients that fail together), which makes wall-clock timing
random — but never results. The jitter RNG is injectable (the sync
engine seeds it per work unit from the cache key, so a retried sweep is
reproducible), and ``sleep`` is injectable so tests run in virtual time.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, TypeVar

#: Async sleep hook type — tests inject a virtual clock.
Sleep = Callable[[float], Awaitable[None]]

T = TypeVar("T")


class TransientError(Exception):
    """Marker base for failures worth retrying with backoff.

    Subclasses may set ``retry_after`` (seconds) — a server hint that
    floors the computed backoff delay, never shortens it.
    """

    retry_after: float | None = None


class AttemptTimeout(TransientError):
    """An attempt exceeded its (jittered) deadline."""


class DeadlineExceeded(Exception):
    """The caller's end-to-end deadline expired before a success.

    Deliberately *not* a :class:`TransientError`: once the requester's
    budget is gone there is nothing to retry for. The serving layer maps
    this to a 429-shaped rejection (shed, not failed)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule for one upstream completion.

    Attempt ``k`` (0-based) that fails retryably sleeps
    ``base_delay_s * multiplier**k``, capped at ``max_delay_s``, then
    scaled by a uniform jitter factor in ``[1 - jitter, 1 + jitter]``.
    A retryable error whose ``retry_after`` exceeds the computed delay
    waits the server's hint instead (never less than asked).
    ``timeout_s`` bounds each attempt, itself jittered by
    ``timeout_jitter`` so a thundering herd of identical requests doesn't
    time out in lockstep; ``None`` disables attempt deadlines.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    timeout_s: float | None = None
    timeout_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if not 0.0 <= self.timeout_jitter < 1.0:
            raise ValueError(
                f"timeout_jitter must be in [0, 1), got {self.timeout_jitter}"
            )

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay after failed attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        if self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay

    def attempt_timeout(self, rng: random.Random) -> float | None:
        """This attempt's jittered deadline (``None`` = no deadline)."""
        if self.timeout_s is None:
            return None
        if not self.timeout_jitter:
            return self.timeout_s
        return self.timeout_s * rng.uniform(
            1.0 - self.timeout_jitter, 1.0 + self.timeout_jitter
        )


def _hint_delay(policy: RetryPolicy, attempt: int, exc: BaseException,
                rng: random.Random) -> float:
    """Backoff after ``attempt``, floored by the error's ``retry_after``."""
    delay = policy.backoff_delay(attempt, rng)
    hint = getattr(exc, "retry_after", None)
    if hint is not None:
        delay = max(delay, hint)
    return delay


async def call_with_retry(
    fn: Callable[[], Awaitable],
    *,
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (TransientError,),
    rng: random.Random | None = None,
    sleep: Sleep = asyncio.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
    timeout_error: Callable[[int, float], BaseException] | None = None,
    deadline: float | None = None,
    clock: Callable[[], float] = time.monotonic,
):
    """Await ``fn()`` with bounded retries under ``policy``.

    Retries only ``retryable`` errors; an attempt that overruns its
    jittered deadline is surfaced as ``timeout_error(attempt, timeout)``
    (default :class:`AttemptTimeout` — callers whose timeout class lives
    elsewhere, like serve's ``ProviderTimeout``, inject a factory).
    Non-retryable exceptions and the final retryable failure propagate
    unchanged. ``on_retry(attempt, error)`` fires before each backoff
    sleep — engines count retries through it.

    ``deadline`` is an absolute instant on ``clock``'s timeline (the
    serving layer derives it from the request's ``X-Deadline-Ms``
    budget). Attempts are clipped to the remaining budget, an attempt
    that would start with none raises :class:`DeadlineExceeded`, and a
    backoff that cannot finish inside the budget fails immediately
    instead of sleeping through it.
    """
    rng = rng if rng is not None else random.Random()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            timeout = policy.attempt_timeout(rng)
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"deadline expired before attempt {attempt + 1}"
                    ) from last
                timeout = remaining if timeout is None else min(timeout, remaining)
            if timeout is None:
                return await fn()
            try:
                return await asyncio.wait_for(fn(), timeout)
            except asyncio.TimeoutError:
                if timeout_error is not None:
                    raise timeout_error(attempt, timeout) from None
                raise AttemptTimeout(
                    f"attempt {attempt + 1} exceeded {timeout:.3f}s"
                ) from None
        except retryable as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = _hint_delay(policy, attempt, exc, rng)
            if deadline is not None and clock() + delay >= deadline:
                raise DeadlineExceeded(
                    f"deadline leaves no room for a {delay:.3f}s backoff "
                    f"after attempt {attempt + 1}"
                ) from exc
            if on_retry is not None:
                on_retry(attempt, exc)
            await sleep(delay)
    raise last if last is not None else RuntimeError("unreachable")


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (TransientError,),
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Synchronous twin of :func:`call_with_retry` for the batch engine.

    Same schedule, same ``retry_after`` flooring, same ``on_retry`` hook.
    ``policy.timeout_s`` is not enforced here — a sync call can't be
    cancelled from outside without an event loop, so attempt deadlines
    are an async-path feature only.
    """
    rng = rng if rng is not None else random.Random()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(_hint_delay(policy, attempt, exc, rng))
    raise last if last is not None else RuntimeError("unreachable")
