"""GPU hardware specification database.

The paper profiles on an NVIDIA RTX 3080 (10 GB). The spec sheet numbers
below give the theoretical peaks used for the rooflines in Figure 1 and in
every prompt's hardware block. Several additional devices are included to
support the paper's "Expanding Dataset" future-work direction (re-profiling
on varying hardware) and the RQ1 random-roofline generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.roofline.model import RooflineSet


@dataclass(frozen=True)
class GpuSpec:
    """Static hardware description of one GPU model."""

    name: str
    vendor: str
    sp_peak_gflops: float
    dp_peak_gflops: float
    int_peak_giops: float
    bandwidth_gbs: float
    memory_gb: float
    num_sms: int
    boost_clock_ghz: float
    l2_cache_mb: float
    max_threads_per_sm: int = 1536
    warp_size: int = 32

    def __post_init__(self) -> None:
        for field in ("sp_peak_gflops", "dp_peak_gflops", "int_peak_giops", "bandwidth_gbs"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{self.name}: {field} must be positive")

    def rooflines(self) -> RooflineSet:
        """Theoretical rooflines for this device (as in Figure 1)."""
        return RooflineSet.from_peaks(
            sp_peak=self.sp_peak_gflops,
            dp_peak=self.dp_peak_gflops,
            int_peak=self.int_peak_giops,
            bandwidth=self.bandwidth_gbs,
        )

    def prompt_block(self) -> str:
        """The hardware bullet list inserted into the Figure 4 prompt."""
        return (
            f"- peak single-precision performance of {self.sp_peak_gflops:.1f} GFLOP/s\n"
            f"- peak double-precision performance of {self.dp_peak_gflops:.1f} GFLOP/s\n"
            f"- peak integer performance of {self.int_peak_giops:.1f} GINTOP/s\n"
            f"- max bandwidth of {self.bandwidth_gbs:.1f} GB/s"
        )


# GA102, 68 SMs @ ~1.71 GHz. FP32 29.77 TFLOP/s; FP64 at 1/64 rate; INT32
# issue at half the FP32 rate; 760 GB/s GDDR6X. These are the spec-sheet
# peaks drawn as the rooflines of the paper's Figure 1.
RTX_3080 = GpuSpec(
    name="NVIDIA GeForce RTX 3080",
    vendor="NVIDIA",
    sp_peak_gflops=29770.0,
    dp_peak_gflops=465.1,
    int_peak_giops=14885.0,
    bandwidth_gbs=760.3,
    memory_gb=10.0,
    num_sms=68,
    boost_clock_ghz=1.71,
    l2_cache_mb=5.0,
)

V100 = GpuSpec(
    name="NVIDIA Tesla V100",
    vendor="NVIDIA",
    sp_peak_gflops=14130.0,
    dp_peak_gflops=7066.0,
    int_peak_giops=14130.0,
    bandwidth_gbs=900.0,
    memory_gb=16.0,
    num_sms=80,
    boost_clock_ghz=1.38,
    l2_cache_mb=6.0,
    max_threads_per_sm=2048,
)

A100 = GpuSpec(
    name="NVIDIA A100",
    vendor="NVIDIA",
    sp_peak_gflops=19490.0,
    dp_peak_gflops=9746.0,
    int_peak_giops=19490.0,
    bandwidth_gbs=1555.0,
    memory_gb=40.0,
    num_sms=108,
    boost_clock_ghz=1.41,
    l2_cache_mb=40.0,
    max_threads_per_sm=2048,
)

MI100 = GpuSpec(
    name="AMD Instinct MI100",
    vendor="AMD",
    sp_peak_gflops=23100.0,
    dp_peak_gflops=11500.0,
    int_peak_giops=23100.0,
    bandwidth_gbs=1228.8,
    memory_gb=32.0,
    num_sms=120,
    boost_clock_ghz=1.50,
    l2_cache_mb=8.0,
    max_threads_per_sm=2560,
    warp_size=64,
)

RTX_2080_TI = GpuSpec(
    name="NVIDIA GeForce RTX 2080 Ti",
    vendor="NVIDIA",
    sp_peak_gflops=13450.0,
    dp_peak_gflops=420.3,
    int_peak_giops=13450.0,
    bandwidth_gbs=616.0,
    memory_gb=11.0,
    num_sms=68,
    boost_clock_ghz=1.545,
    l2_cache_mb=5.5,
    max_threads_per_sm=1024,
)

H100 = GpuSpec(
    name="NVIDIA H100 PCIe",
    vendor="NVIDIA",
    sp_peak_gflops=51220.0,
    dp_peak_gflops=25610.0,
    int_peak_giops=51220.0,
    bandwidth_gbs=2039.0,
    memory_gb=80.0,
    num_sms=114,
    boost_clock_ghz=1.755,
    l2_cache_mb=50.0,
    max_threads_per_sm=2048,
)

GPU_DATABASE: dict[str, GpuSpec] = {
    spec.name: spec
    for spec in (RTX_3080, V100, A100, MI100, RTX_2080_TI, H100)
}


def short_gpu_name(name: str) -> str:
    """A compact table-header form of a marketing name (e.g. ``RTX 3080``)."""
    out = name
    for prefix in ("NVIDIA ", "AMD ", "GeForce ", "Tesla ", "Instinct "):
        out = out.replace(prefix, "")
    for suffix in (" PCIe", " SXM"):
        out = out.removesuffix(suffix)
    return out.strip()


def get_gpu(name: str) -> GpuSpec:
    """Look up a GPU by its full marketing name (case-insensitive substring ok)."""
    if name in GPU_DATABASE:
        return GPU_DATABASE[name]
    lowered = name.lower()
    matches = [spec for key, spec in GPU_DATABASE.items() if lowered in key.lower()]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPU_DATABASE)}")
    raise KeyError(f"ambiguous GPU name {name!r}; matches {[m.name for m in matches]}")


def resolve_gpus(arg: str) -> list[GpuSpec]:
    """Parse a ``--gpus`` value: ``all`` or a comma-separated name list.

    Names go through :func:`get_gpu`'s case-insensitive substring matching,
    so ``--gpus v100,h100`` works. The returned list keeps database order
    for ``all`` and argument order otherwise; duplicates collapse.
    """
    if arg.strip().lower() == "all":
        return list(GPU_DATABASE.values())
    gpus: list[GpuSpec] = []
    for part in arg.split(","):
        part = part.strip()
        if not part:
            continue
        spec = get_gpu(part)
        if spec not in gpus:
            gpus.append(spec)
    if not gpus:
        raise ValueError(f"no GPUs selected by {arg!r}")
    return gpus


def default_gpu() -> GpuSpec:
    """The paper's profiling target."""
    return RTX_3080
