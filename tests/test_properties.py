"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.eval.metrics import MetricReport, confusion, macro_f1, mcc
from repro.roofline import Roofline
from repro.tokenizer import BpeTokenizer, pretokenize
from repro.types import Boundedness
from repro.util.rng import RngStream
from repro.util.stats import chi2_sf, five_number_summary
from repro.kernels.ir import eval_scalar

positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)
label_lists = st.lists(
    st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
    min_size=2,
    max_size=60,
)


class TestRooflineProperties:
    @given(peak=positive_floats, bw=positive_floats, ai=st.floats(0, 1e6))
    def test_attainable_never_exceeds_peak(self, peak, bw, ai):
        rl = Roofline(peak, bw)
        assert rl.attainable(ai) <= peak + 1e-9

    @given(peak=positive_floats, bw=positive_floats, ai=st.floats(0, 1e6))
    def test_classification_consistent_with_attainable(self, peak, bw, ai):
        rl = Roofline(peak, bw)
        label = rl.classify(ai)
        if label is Boundedness.COMPUTE:
            assert ai * bw >= peak * (1 - 1e-12)
        else:
            assert ai * bw < peak

    @given(peak=positive_floats, bw=positive_floats,
           a=st.floats(0, 1e6), b=st.floats(0, 1e6))
    def test_attainable_monotone(self, peak, bw, a, b):
        assume(a <= b)
        rl = Roofline(peak, bw)
        assert rl.attainable(a) <= rl.attainable(b) + 1e-9


class TestMetricProperties:
    @given(truths=label_lists)
    def test_perfect_predictions(self, truths):
        rep = MetricReport.from_predictions(truths, truths)
        assert rep.accuracy == 100.0
        assert rep.macro_f1 == 100.0

    @given(pairs=st.lists(st.tuples(
        st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
        st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
    ), min_size=2, max_size=60))
    def test_metric_ranges(self, pairs):
        truths, preds = zip(*pairs)
        c = confusion(truths, preds)
        assert 0.0 <= macro_f1(c) <= 100.0
        assert -100.0 <= mcc(c) <= 100.0

    @given(pairs=st.lists(st.tuples(
        st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
        st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
    ), min_size=2, max_size=60))
    def test_class_swap_symmetry(self, pairs):
        truths, preds = zip(*pairs)
        direct = confusion(truths, preds)
        swapped = confusion([t.other for t in truths], [p.other for p in preds])
        assert macro_f1(direct) == macro_f1(swapped)
        assert mcc(direct) == mcc(swapped)

    @given(pairs=st.lists(st.tuples(
        st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
        st.sampled_from([Boundedness.COMPUTE, Boundedness.BANDWIDTH]),
    ), min_size=2, max_size=60))
    def test_inversion_negates_mcc(self, pairs):
        truths, preds = zip(*pairs)
        direct = mcc(confusion(truths, preds))
        inverted = mcc(confusion(truths, [p.other for p in preds]))
        assert math.isclose(direct, -inverted, abs_tol=1e-9)


class TestTokenizerProperties:
    @settings(max_examples=40)
    @given(text=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                        max_size=300))
    def test_pretokenize_partition(self, text):
        assert "".join(pretokenize(text)) == text

    @settings(max_examples=25, deadline=None)
    @given(text=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                        max_size=200))
    def test_encode_decode_roundtrip(self, text):
        tok = BpeTokenizer.train(["float x = a[i] + b[i];"], num_merges=20)
        assert tok.decode(tok.encode(text)) == text

    @settings(max_examples=25, deadline=None)
    @given(text=st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                        max_size=200))
    def test_count_never_exceeds_chars(self, text):
        tok = BpeTokenizer.train(["abc def"], num_merges=5)
        assert tok.count_tokens(text) <= len(text)


class TestRngProperties:
    @given(key=st.text(max_size=20), lo=st.floats(-100, 100), span=st.floats(0.1, 100))
    def test_uniform_in_bounds(self, key, lo, span):
        rng = RngStream("prop", key)
        v = rng.uniform(lo, lo + span)
        assert lo <= v < lo + span

    @given(key=st.text(max_size=20))
    def test_reproducibility(self, key):
        assert RngStream("p", key).uniform() == RngStream("p", key).uniform()


class TestStatsProperties:
    @given(x=st.floats(min_value=0.001, max_value=200), df=st.integers(1, 40))
    def test_chi2_sf_is_probability(self, x, df):
        p = chi2_sf(x, df)
        assert 0.0 <= p <= 1.0

    @given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_five_number_ordering(self, values):
        s = five_number_summary(values)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum


class TestScalarEvalProperties:
    @given(n=st.integers(1, 10**6), m=st.integers(1, 10**3))
    def test_product_eval(self, n, m):
        env = {"n": n, "m": m}
        assert eval_scalar("n*m", env) == n * m
        assert eval_scalar("2*n", env) == 2 * n
        assert eval_scalar(n, env) == n


class TestEmulatorDeterminismProperty:
    @settings(max_examples=10, deadline=None)
    @given(idx=st.integers(0, 339))
    def test_repeat_queries_identical(self, idx, dataset):
        from repro.llm import get_model
        from repro.prompts import build_classify_prompt

        model = get_model("o3-mini")
        prompt = build_classify_prompt(dataset.balanced[idx]).text
        assert model.complete(prompt).text == model.complete(prompt).text
