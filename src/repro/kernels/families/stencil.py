"""Stencil families — nearest-neighbour grid updates.

Single-precision stencils sit deep in the bandwidth-bound region; the
double-precision variants land near the DP balance point (0.61 FLOP/byte on
the RTX 3080), where the BB/CB outcome hinges on whether the working set
fits in L2 — a runtime fact that static source inspection cannot see. These
are the corpus's deliberately-hard cases.
"""

from __future__ import annotations

from repro.kernels.families import family
from repro.kernels.families.helpers import (
    assemble,
    draw_size_1d,
    variant_rng,
)
from repro.kernels.ir import (
    ArrayDecl,
    BinOp,
    BinOpKind,
    Const,
    DType,
    If,
    Kernel,
    Let,
    ScalarParam,
    Stmt,
    Store,
    Var,
    add,
    aff,
    call,
    CallFn,
    load,
    mul,
    sub,
    var,
)
from repro.types import Language


def _dt(variant: int) -> DType:
    return DType.F64 if variant in (0, 1, 3) else DType.F32


def _side(rng, dt: DType) -> int:
    # DP domains are kept smaller so some fit in L2 (the interesting cases).
    if dt is DType.F64:
        return int(rng.choice([384, 512, 640, 704, 768, 1024]))
    return int(rng.choice([640, 768, 1024, 1280, 1536, 2048]))


def _c(v: float, dt: DType) -> Const:
    return Const(v, dt)


def _i(v: int) -> Const:
    return Const(v, DType.I32)


def _interior_2d(nx_val: int, ny_val: int, body: tuple[Stmt, ...]) -> If:
    gx = Var("gx", DType.I32)
    gy = Var("gy", DType.I32)
    nx = Var("nx", DType.I32)
    ny = Var("ny", DType.I32)
    cond = BinOp(
        BinOpKind.LAND,
        BinOp(
            BinOpKind.LAND,
            BinOp(BinOpKind.GT, gx, _i(0), DType.I32),
            BinOp(BinOpKind.LT, gx, sub(nx, _i(1), DType.I32), DType.I32),
            DType.I32,
        ),
        BinOp(
            BinOpKind.LAND,
            BinOp(BinOpKind.GT, gy, _i(0), DType.I32),
            BinOp(BinOpKind.LT, gy, sub(ny, _i(1), DType.I32), DType.I32),
            DType.I32,
        ),
        DType.I32,
    )
    taken = ((nx_val - 2) * (ny_val - 2)) / float(nx_val * ny_val)
    return If(cond=cond, then=body, taken_fraction=taken)


def _center(dt: DType, off: int = 0, row: int = 0):
    """Load u[(gy+row)*nx + gx + off] (row-major 2-D neighbour)."""
    terms: list = [("gy", "nx"), ("gx", 1)]
    if row:
        terms.append(("nx", row))
    return load("u", aff(*terms, const=off), dt)


def _stencil_2d_kernel(
    name: str, dt: DType, expr_builder, nx: int, ny: int
) -> Kernel:
    body = (_interior_2d(nx, ny, expr_builder(dt)),)
    return Kernel(
        name=name,
        arrays=(
            ArrayDecl("u", dt, "nx*ny"),
            ArrayDecl("out", dt, "nx*ny", is_output=True),
        ),
        params=(ScalarParam("nx", DType.I32), ScalarParam("ny", DType.I32)),
        body=body,
        work_items="nx",
        work_items_y="ny",
    )


def _assemble_2d(family_name, variant, language, rng, kernel, nx, ny, description):
    return assemble(
        family=family_name, variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"nx": nx, "ny": ny},
        binding_exprs={"nx": "nx", "ny": "ny"},
        description=description, block2d=(16, 16),
    )


@family("stencil1d3", "stencil", tendency="bb")
def build_stencil1d3(variant: int, language: Language):
    rng = variant_rng("stencil1d3", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    body = (
        Let("acc", mul(_c(0.25, dt), load("x", aff("gx"), dt), dt), dt),
        Store(
            "y", aff("gx"),
            add(
                var("acc", dt),
                add(
                    mul(_c(0.5, dt), load("x", aff("gx", const=1), dt), dt),
                    mul(_c(0.25, dt), load("x", aff("gx", const=2), dt), dt),
                    dt,
                ),
                dt,
            ),
            dt,
        ),
    )
    kernel = Kernel(
        name="stencil_1d_3pt",
        arrays=(ArrayDecl("x", dt, "m"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=body,
        work_items="n",
    )
    return assemble(
        family="stencil1d3", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "m": n + 2}, binding_exprs={"n": "n"},
        description="three-point weighted 1-D stencil",
    )


@family("stencil1d5", "stencil", tendency="bb")
def build_stencil1d5(variant: int, language: Language):
    rng = variant_rng("stencil1d5", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    acc = mul(_c(0.1, dt), load("x", aff("gx"), dt), dt)
    for k, w in ((1, 0.2), (2, 0.4), (3, 0.2), (4, 0.1)):
        acc = add(acc, mul(_c(w, dt), load("x", aff("gx", const=k), dt), dt), dt)
    kernel = Kernel(
        name="stencil_1d_5pt",
        arrays=(ArrayDecl("x", dt, "m"), ArrayDecl("y", dt, "n", is_output=True)),
        params=(ScalarParam("n", DType.I32),),
        body=(Store("y", aff("gx"), acc, dt),),
        work_items="n",
    )
    return assemble(
        family="stencil1d5", variant=variant, language=language, rng=rng,
        kernel=kernel, flags={"n": n, "m": n + 4}, binding_exprs={"n": "n"},
        description="five-point weighted 1-D stencil",
    )


@family("stencil2d5", "stencil", tendency="bb")
def build_stencil2d5(variant: int, language: Language):
    rng = variant_rng("stencil2d5", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        acc = mul(_c(0.5, dtt), _center(dtt), dtt)
        for off, row in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            acc = add(acc, mul(_c(0.125, dtt), _center(dtt, off, row), dtt), dtt)
        return (Store("out", aff(("gy", "nx"), "gx"), acc, dtt),)

    kernel = _stencil_2d_kernel("stencil_2d_5pt", dt, expr, nx, ny)
    return _assemble_2d("stencil2d5", variant, language, rng, kernel, nx, ny,
                        "five-point 2-D stencil sweep")


@family("stencil2d9", "stencil", tendency="bb")
def build_stencil2d9(variant: int, language: Language):
    rng = variant_rng("stencil2d9", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        acc = mul(_c(0.2, dtt), _center(dtt), dtt)
        for off, row in (
            (1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, 1), (1, -1), (-1, -1),
        ):
            acc = add(acc, mul(_c(0.1, dtt), _center(dtt, off, row), dtt), dtt)
        return (Store("out", aff(("gy", "nx"), "gx"), acc, dtt),)

    kernel = _stencil_2d_kernel("stencil_2d_9pt", dt, expr, nx, ny)
    return _assemble_2d("stencil2d9", variant, language, rng, kernel, nx, ny,
                        "nine-point box 2-D stencil sweep")


@family("stencil3d7", "stencil", tendency="bb")
def build_stencil3d7(variant: int, language: Language):
    rng = variant_rng("stencil3d7", variant, language)
    dt = _dt(variant)
    s = int(rng.choice([48, 64, 80, 96] if dt is DType.F64 else [96, 128, 160, 192]))
    n = s * s * s
    # All reads are centred at gx + s2 inside the padded input grid; plane
    # stride s*s and row stride s enter as parameter-coefficient terms.
    acc = mul(_c(0.4, dt), load("u", aff("gx", ("s2", 1)), dt), dt)
    for term in ((None, 1), (None, -1), ("s", 1), ("s", -1), ("s2", 1), ("s2", -1)):
        sym, sign = term
        if sym is None:
            idx = aff("gx", ("s2", 1), const=sign)
        elif sym == "s2":
            idx = aff("gx", ("s2", 2)) if sign > 0 else aff("gx")
        else:
            idx = aff("gx", ("s2", 1), (sym, sign))
        acc = add(acc, mul(_c(0.1, dt), load("u", idx, dt), dt), dt)
    kernel = Kernel(
        name="stencil_3d_7pt",
        arrays=(ArrayDecl("u", dt, "m"), ArrayDecl("out", dt, "n", is_output=True)),
        params=(
            ScalarParam("n", DType.I32),
            ScalarParam("s", DType.I32),
            ScalarParam("s2", DType.I32),
        ),
        body=(Store("out", aff("gx"), acc, dt),),
        work_items="n",
    )
    return assemble(
        family="stencil3d7", variant=variant, language=language, rng=rng,
        kernel=kernel,
        flags={"n": n, "s": s, "s2": s * s, "m": n + 2 * s * s + s},
        binding_exprs={"n": "n", "s": "s", "s2": "s2"},
        description="seven-point 3-D stencil on a flattened grid",
    )


@family("jacobi2d", "stencil", tendency="mixed")
def build_jacobi2d(variant: int, language: Language):
    rng = variant_rng("jacobi2d", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        acc = _center(dtt, 1, 0)
        for off, row in ((-1, 0), (0, 1), (0, -1)):
            acc = add(acc, _center(dtt, off, row), dtt)
        return (Store("out", aff(("gy", "nx"), "gx"), mul(_c(0.25, dtt), acc, dtt), dtt),)

    kernel = _stencil_2d_kernel("jacobi_step", dt, expr, nx, ny)
    return _assemble_2d("jacobi2d", variant, language, rng, kernel, nx, ny,
                        "one Jacobi relaxation sweep")


@family("heat2d", "stencil", tendency="mixed")
def build_heat2d(variant: int, language: Language):
    rng = variant_rng("heat2d", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        # Anisotropic diffusion plus a logistic reaction term: enough
        # arithmetic per point that the DP variant straddles the DP balance
        # point depending on whether the grid fits in L2.
        c = _center(dtt)
        lap_x = sub(add(_center(dtt, 1, 0), _center(dtt, -1, 0), dtt),
                    mul(_c(2.0, dtt), c, dtt), dtt)
        lap_y = sub(add(_center(dtt, 0, 1), _center(dtt, 0, -1), dtt),
                    mul(_c(2.0, dtt), c, dtt), dtt)
        diffusion = add(
            mul(var("alpha", dtt), lap_x, dtt),
            mul(mul(var("alpha", dtt), _c(0.85, dtt), dtt), lap_y, dtt),
            dtt,
        )
        reaction = mul(
            mul(_c(0.0625, dtt), c, dtt), sub(_c(1.0, dtt), c, dtt), dtt
        )
        new = add(c, add(diffusion, reaction, dtt), dtt)
        return (Store("out", aff(("gy", "nx"), "gx"), new, dtt),)

    body = (_interior_2d(nx, ny, expr(dt)),)
    kernel = Kernel(
        name="heat_step",
        arrays=(
            ArrayDecl("u", dt, "nx*ny"),
            ArrayDecl("out", dt, "nx*ny", is_output=True),
        ),
        params=(
            ScalarParam("alpha", dt),
            ScalarParam("nx", DType.I32),
            ScalarParam("ny", DType.I32),
        ),
        body=body,
        work_items="nx",
        work_items_y="ny",
    )
    return assemble(
        family="heat2d", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"nx": nx, "ny": ny},
        binding_exprs={"alpha": 1, "nx": "nx", "ny": "ny"},
        description="explicit heat-equation time step", block2d=(16, 16),
    )


@family("laplacian2d", "stencil", tendency="bb")
def build_laplacian2d(variant: int, language: Language):
    rng = variant_rng("laplacian2d", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        lap = sub(
            add(add(_center(dtt, 1, 0), _center(dtt, -1, 0), dtt),
                add(_center(dtt, 0, 1), _center(dtt, 0, -1), dtt), dtt),
            mul(_c(4.0, dtt), _center(dtt), dtt),
            dtt,
        )
        return (Store("out", aff(("gy", "nx"), "gx"), lap, dtt),)

    kernel = _stencil_2d_kernel("laplacian_2d", dt, expr, nx, ny)
    return _assemble_2d("laplacian2d", variant, language, rng, kernel, nx, ny,
                        "discrete 2-D Laplacian")


@family("gradmag2d", "stencil", tendency="mixed")
def build_gradmag2d(variant: int, language: Language):
    rng = variant_rng("gradmag2d", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        dx = mul(_c(0.5, dtt), sub(_center(dtt, 1, 0), _center(dtt, -1, 0), dtt), dtt)
        dy = mul(_c(0.5, dtt), sub(_center(dtt, 0, 1), _center(dtt, 0, -1), dtt), dtt)
        mag = call(
            CallFn.SQRT,
            add(mul(dx, dx, dtt), mul(dy, dy, dtt), dtt),
            dtype=dtt,
        )
        return (Store("out", aff(("gy", "nx"), "gx"), mag, dtt),)

    kernel = _stencil_2d_kernel("gradient_magnitude", dt, expr, nx, ny)
    return _assemble_2d("gradmag2d", variant, language, rng, kernel, nx, ny,
                        "central-difference gradient magnitude")


@family("blur3x3", "stencil", tendency="mixed")
def build_blur3x3(variant: int, language: Language):
    rng = variant_rng("blur3x3", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)
    weights = (0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625)

    def expr(dtt):
        taps = [(-1, -1), (0, -1), (1, -1), (-1, 0), (0, 0), (1, 0), (-1, 1), (0, 1), (1, 1)]
        acc = mul(_c(weights[0], dtt), _center(dtt, *taps[0]), dtt)
        for w, (off, row) in zip(weights[1:], taps[1:]):
            acc = add(acc, mul(_c(w, dtt), _center(dtt, off, row), dtt), dtt)
        return (Store("out", aff(("gy", "nx"), "gx"), acc, dtt),)

    kernel = _stencil_2d_kernel("gaussian_blur_3x3", dt, expr, nx, ny)
    return _assemble_2d("blur3x3", variant, language, rng, kernel, nx, ny,
                        "separable-weight 3x3 Gaussian blur")


@family("sobel2d", "stencil", tendency="mixed")
def build_sobel2d(variant: int, language: Language):
    rng = variant_rng("sobel2d", variant, language)
    dt = _dt(variant)
    nx = ny = _side(rng, dt)

    def expr(dtt):
        gx_acc = sub(
            add(add(_center(dtt, 1, -1), mul(_c(2.0, dtt), _center(dtt, 1, 0), dtt), dtt),
                _center(dtt, 1, 1), dtt),
            add(add(_center(dtt, -1, -1), mul(_c(2.0, dtt), _center(dtt, -1, 0), dtt), dtt),
                _center(dtt, -1, 1), dtt),
            dtt,
        )
        gy_acc = sub(
            add(add(_center(dtt, -1, 1), mul(_c(2.0, dtt), _center(dtt, 0, 1), dtt), dtt),
                _center(dtt, 1, 1), dtt),
            add(add(_center(dtt, -1, -1), mul(_c(2.0, dtt), _center(dtt, 0, -1), dtt), dtt),
                _center(dtt, 1, -1), dtt),
            dtt,
        )
        mag = add(
            call(CallFn.FABS, gx_acc, dtype=dtt),
            call(CallFn.FABS, gy_acc, dtype=dtt),
            dtt,
        )
        return (Store("out", aff(("gy", "nx"), "gx"), mag, dtt),)

    kernel = _stencil_2d_kernel("sobel_filter", dt, expr, nx, ny)
    return _assemble_2d("sobel2d", variant, language, rng, kernel, nx, ny,
                        "Sobel edge-detection filter")


@family("wave1d", "stencil", tendency="bb")
def build_wave1d(variant: int, language: Language):
    rng = variant_rng("wave1d", variant, language)
    dt = _dt(variant)
    n = draw_size_1d(rng)
    u = load("u", aff("gx", const=1), dt)
    lap = sub(
        add(load("u", aff("gx"), dt), load("u", aff("gx", const=2), dt), dt),
        mul(_c(2.0, dt), u, dt),
        dt,
    )
    new = sub(
        add(mul(_c(2.0, dt), u, dt), mul(var("c2", dt), lap, dt), dt),
        load("u_prev", aff("gx", const=1), dt),
        dt,
    )
    kernel = Kernel(
        name="wave_step",
        arrays=(
            ArrayDecl("u", dt, "m"),
            ArrayDecl("u_prev", dt, "m"),
            ArrayDecl("u_next", dt, "n", is_output=True),
        ),
        params=(ScalarParam("c2", dt), ScalarParam("n", DType.I32)),
        body=(Store("u_next", aff("gx"), new, dt),),
        work_items="n",
    )
    return assemble(
        family="wave1d", variant=variant, language=language, rng=rng, kernel=kernel,
        flags={"n": n, "m": n + 2}, binding_exprs={"c2": 1, "n": "n"},
        description="second-order 1-D wave-equation update",
    )
